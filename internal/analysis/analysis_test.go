package analysis

import (
	"sync"
	"testing"
	"time"

	"hpcfail/internal/dist"
	"hpcfail/internal/failures"
	"hpcfail/internal/lanl"
)

var (
	refOnce sync.Once
	refData *failures.Dataset
	refErr  error
)

// referenceDataset generates the seed-1 synthetic trace shared by all
// analysis tests.
func referenceDataset(t *testing.T) *failures.Dataset {
	t.Helper()
	refOnce.Do(func() {
		refData, refErr = lanl.NewGenerator(lanl.Config{Seed: 1}).Generate()
	})
	if refErr != nil {
		t.Fatalf("generate: %v", refErr)
	}
	return refData
}

var paperHWTypes = []failures.HWType{"D", "E", "F", "G", "H"}

func TestRootCauseBreakdown(t *testing.T) {
	d := referenceDataset(t)
	bds, err := RootCauseBreakdown(d, paperHWTypes)
	if err != nil {
		t.Fatal(err)
	}
	if len(bds) != len(paperHWTypes)+1 {
		t.Fatalf("got %d breakdowns", len(bds))
	}
	for _, bd := range bds {
		// Shares sum to 1.
		total := 0.0
		for _, c := range failures.Causes() {
			s := bd.Share[c]
			if s < 0 || s > 1 {
				t.Fatalf("%s: share %v out of range", bd.Label, s)
			}
			total += s
		}
		if total < 0.999 || total > 1.001 {
			t.Fatalf("%s: shares sum to %g", bd.Label, total)
		}
		// Figure 1a shape: hardware is the single largest category,
		// 30%-60%+; software second-largest among the named causes.
		hw := bd.Share[failures.CauseHardware]
		if hw < 0.25 {
			t.Errorf("%s: hardware share %.2f below the paper's 30-60%% band", bd.Label, hw)
		}
		for _, c := range failures.Causes() {
			if c != failures.CauseHardware && bd.Share[c] > hw {
				t.Errorf("%s: %v (%.2f) exceeds hardware (%.2f)", bd.Label, c, bd.Share[c], hw)
			}
		}
	}
	// Aggregate bar is last.
	if bds[len(bds)-1].Label != "All systems" {
		t.Fatalf("last label = %q", bds[len(bds)-1].Label)
	}
	if got := bds[0].Percent(failures.CauseHardware); got <= 1 {
		t.Errorf("Percent should return percentage points, got %g", got)
	}
}

func TestDowntimeBreakdown(t *testing.T) {
	d := referenceDataset(t)
	bds, err := DowntimeBreakdown(d, paperHWTypes)
	if err != nil {
		t.Fatal(err)
	}
	for _, bd := range bds {
		total := 0.0
		for _, c := range failures.Causes() {
			total += bd.Share[c]
		}
		if total < 0.999 || total > 1.001 {
			t.Fatalf("%s: downtime shares sum to %g", bd.Label, total)
		}
		// Hardware and software dominate downtime (Figure 1b trends). Type
		// H is a single small system (~30 records), so its split is noise
		// dominated by individual outlier repairs; skip it.
		if bd.Label == "H" {
			continue
		}
		hwSW := bd.Share[failures.CauseHardware] + bd.Share[failures.CauseSoftware]
		if hwSW < 0.4 {
			t.Errorf("%s: hardware+software downtime share %.2f too low", bd.Label, hwSW)
		}
	}
	// Figure 1(b): for type E the unknown downtime share is tiny, and in
	// aggregate the unknown downtime share is smaller than its frequency
	// share because unknown repairs are short-median.
	for _, bd := range bds {
		if bd.Label == "E" && bd.Share[failures.CauseUnknown] > 0.10 {
			t.Errorf("type E unknown downtime share %.3f too high", bd.Share[failures.CauseUnknown])
		}
	}
}

func TestBreakdownErrors(t *testing.T) {
	empty, err := failures.NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RootCauseBreakdown(empty, paperHWTypes); err == nil {
		t.Error("empty dataset: want error")
	}
	if _, err := DowntimeBreakdown(empty, paperHWTypes); err == nil {
		t.Error("empty dataset: want error")
	}
	if _, err := DetailShare(empty, "memory"); err == nil {
		t.Error("empty dataset: want error")
	}
	// Unknown hardware type yields no records -> error mentioning the type.
	d := referenceDataset(t)
	if _, err := RootCauseBreakdown(d, []failures.HWType{"Z"}); err == nil {
		t.Error("unknown hardware type: want error")
	}
}

func TestDetailShareMemory(t *testing.T) {
	d := referenceDataset(t)
	// Section 4: memory is a significant share everywhere; F and H above
	// 25%.
	for _, hw := range []failures.HWType{"F", "H"} {
		share, err := DetailShare(d.ByHW(hw), "memory")
		if err != nil {
			t.Fatal(err)
		}
		if share < 0.2 {
			t.Errorf("type %s memory share = %.3f", hw, share)
		}
	}
	share, err := DetailShare(d.ByHW("E"), "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.4 {
		t.Errorf("type E cpu share = %.3f, want ~0.5", share)
	}
}

func TestFailureRates(t *testing.T) {
	d := referenceDataset(t)
	catalog := lanl.Catalog()
	rates, err := FailureRates(d, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 22 {
		t.Fatalf("got %d rates", len(rates))
	}
	// Figure 2(a): the raw failure rate varies by well over an order of
	// magnitude across systems.
	raw, err := SpreadPerYear(rates)
	if err != nil {
		t.Fatal(err)
	}
	if raw.MaxOverMin < 10 {
		t.Errorf("raw rate spread = %.1fx, paper has ~68x (17 to 1159)", raw.MaxOverMin)
	}
	// Figure 2(b): normalizing by processors shrinks the spread
	// dramatically.
	norm, err := SpreadPerYearPerProc(rates)
	if err != nil {
		t.Fatal(err)
	}
	if norm.MaxOverMin >= raw.MaxOverMin/2 {
		t.Errorf("normalized spread %.1fx should be far below raw %.1fx", norm.MaxOverMin, raw.MaxOverMin)
	}
	// Type E systems (5-12) have near-identical normalized rates.
	var eRates []float64
	for _, r := range rates {
		if r.HW == "E" {
			eRates = append(eRates, r.PerYearPerProc)
		}
	}
	min, max := eRates[0], eRates[0]
	for _, v := range eRates {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min > 3 {
		t.Errorf("type E normalized rates vary %.1fx", max/min)
	}
}

func TestSpreadErrors(t *testing.T) {
	if _, err := SpreadPerYear(nil); err == nil {
		t.Error("empty rates: want error")
	}
	if _, err := SpreadPerYearPerProc([]SystemRate{{System: 1}}); err == nil {
		t.Error("all-zero rates: want error")
	}
}

func TestPerNodeCounts(t *testing.T) {
	d := referenceDataset(t)
	sys20, err := lanl.SystemByID(20)
	if err != nil {
		t.Fatal(err)
	}
	study, err := PerNodeCounts(d, sys20)
	if err != nil {
		t.Fatal(err)
	}
	// Graphics nodes excluded from compute counts: 49 - 3 graphics - 0
	// frontend = 46 compute nodes.
	if len(study.ComputeCounts) != 46 {
		t.Fatalf("compute nodes = %d, want 46", len(study.ComputeCounts))
	}
	// Figure 3(a): graphics nodes hold the top counts.
	maxCompute := 0
	for _, c := range study.ComputeCounts {
		if c > maxCompute {
			maxCompute = c
		}
	}
	for _, g := range sys20.GraphicsNodes {
		if study.CountsByNode[g] < maxCompute {
			t.Errorf("graphics node %d count %d below max compute %d",
				g, study.CountsByNode[g], maxCompute)
		}
	}
	// Figure 3(b): Poisson under-fits; normal and lognormal do better.
	if study.PoissonErr != nil || study.NormalErr != nil || study.LogNormErr != nil {
		t.Fatalf("fit errors: %v %v %v", study.PoissonErr, study.NormalErr, study.LogNormErr)
	}
	if !study.PoissonRejected {
		t.Errorf("Poisson NLL %.1f should exceed normal NLL %.1f", study.PoissonNLL, study.NormalNLL)
	}
	if study.Overdispersion() < 2 {
		t.Errorf("overdispersion = %.2f, want clearly above 1", study.Overdispersion())
	}
}

func TestPerNodeCountsErrors(t *testing.T) {
	empty, err := failures.NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	sys20, err := lanl.SystemByID(20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PerNodeCounts(empty, sys20); err == nil {
		t.Error("empty dataset: want error")
	}
}

func TestLifecycleCurveShapes(t *testing.T) {
	d := referenceDataset(t)
	// System 5 (type E): early-drop (Figure 4a).
	sys5, err := lanl.SystemByID(5)
	if err != nil {
		t.Fatal(err)
	}
	c5, err := LifecycleCurve(d, 5, sys5.Start, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got := ClassifyLifecycle(c5); got != ShapeEarlyDrop {
		t.Errorf("system 5 shape = %v, want early-drop", got)
	}
	// System 19 (type G): ramp-then-drop (Figure 4b).
	sys19, err := lanl.SystemByID(19)
	if err != nil {
		t.Fatal(err)
	}
	c19, err := LifecycleCurve(d, 19, sys19.Start, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := ClassifyLifecycle(c19); got != ShapeRampThenDrop {
		t.Errorf("system 19 shape = %v, want ramp-then-drop", got)
	}
	// System 21 was commissioned late and follows the early-drop pattern
	// (Section 5.2's supporting observation).
	sys21, err := lanl.SystemByID(21)
	if err != nil {
		t.Fatal(err)
	}
	c21, err := LifecycleCurve(d, 21, sys21.Start, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := ClassifyLifecycle(c21); got != ShapeEarlyDrop {
		t.Errorf("system 21 shape = %v, want early-drop", got)
	}
	// Per-cause breakdown sums to the total.
	for _, p := range c5 {
		sum := 0
		for _, n := range p.ByCause {
			sum += n
		}
		if sum != p.Total {
			t.Fatalf("month %d: cause sum %d != total %d", p.Month, sum, p.Total)
		}
	}
}

func TestLifecycleCurveErrors(t *testing.T) {
	d := referenceDataset(t)
	if _, err := LifecycleCurve(d, 5, lanl.CollectionStart, 0); err == nil {
		t.Error("zero months: want error")
	}
	if _, err := LifecycleCurve(d, 99, lanl.CollectionStart, 10); err == nil {
		t.Error("unknown system: want error")
	}
}

func TestClassifyLifecycleDegenerate(t *testing.T) {
	if got := ClassifyLifecycle(nil); got != ShapeFlat {
		t.Errorf("nil curve = %v", got)
	}
	flat := make([]LifecyclePoint, 12)
	if got := ClassifyLifecycle(flat); got != ShapeFlat {
		t.Errorf("all-zero curve = %v", got)
	}
	if ShapeEarlyDrop.String() != "early-drop" || ShapeRampThenDrop.String() != "ramp-then-drop" ||
		ShapeFlat.String() != "flat" || LifecycleShape(9).String() == "" {
		t.Error("LifecycleShape.String broken")
	}
}

func TestTimeOfDayProfile(t *testing.T) {
	d := referenceDataset(t)
	p, err := NewTimeOfDayProfile(d)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5: daytime peak roughly 2x the night trough; weekdays nearly
	// 2x weekends.
	ratio := p.PeakTroughRatio()
	if ratio < 1.5 || ratio > 3 {
		t.Errorf("peak/trough = %.2f, want ~2", ratio)
	}
	wr := p.WeekdayWeekendRatio()
	if wr < 1.4 || wr > 2.6 {
		t.Errorf("weekday/weekend = %.2f, want ~1.8", wr)
	}
	// The peak hour falls in the working afternoon, not at night.
	peakHour, peak := 0, 0
	for h, c := range p.ByHour {
		if c > peak {
			peakHour, peak = h, c
		}
	}
	if peakHour < 9 || peakHour > 18 {
		t.Errorf("peak hour = %d, want working hours", peakHour)
	}
	empty, err := failures.NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTimeOfDayProfile(empty); err == nil {
		t.Error("empty dataset: want error")
	}
}

func TestFigure6(t *testing.T) {
	d := referenceDataset(t)
	boundary := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	panels, err := Figure6(d, 20, 22, boundary)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6(b): late per-node TBF is Weibull/gamma with decreasing
	// hazard and shape ~0.7.
	nl := panels.NodeLate
	bf, err := nl.BestFamily()
	if err != nil {
		t.Fatal(err)
	}
	if bf == dist.FamilyExponential {
		t.Error("node-late best family should not be exponential")
	}
	if nl.WeibullShape < 0.5 || nl.WeibullShape > 1.0 {
		t.Errorf("node-late Weibull shape = %.3f, paper: 0.7", nl.WeibullShape)
	}
	if !nl.HazardDecreasing {
		t.Error("node-late hazard should be decreasing")
	}
	ok, err := nl.ExponentialAdequate(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("exponential should not match the best NLL on node-late data")
	}
	// Figure 6(a): early per-node TBF has higher C² than late.
	if panels.NodeEarly.Summary.C2 <= panels.NodeLate.Summary.C2 {
		t.Errorf("early C² (%.2f) should exceed late C² (%.2f)",
			panels.NodeEarly.Summary.C2, panels.NodeLate.Summary.C2)
	}
	// Figure 6(c): early system-wide view has >30% zero interarrivals.
	if f := panels.SystemEarly.ZeroFraction; f < 0.25 {
		t.Errorf("system-early zero fraction = %.3f, want > 0.30", f)
	}
	// Figure 6(d): system-wide late fit also has decreasing hazard with
	// shape ~0.78.
	sl := panels.SystemLate
	if !sl.HazardDecreasing {
		t.Error("system-late hazard should be decreasing")
	}
	if sl.WeibullShape < 0.5 || sl.WeibullShape > 1.05 {
		t.Errorf("system-late Weibull shape = %.3f, paper: 0.78", sl.WeibullShape)
	}
	// Labels.
	if panels.NodeEarly.View != ViewNode || panels.SystemLate.View != ViewSystem {
		t.Error("views mislabeled")
	}
	if ViewNode.String() != "per-node" || ViewSystem.String() != "system-wide" {
		t.Error("view names broken")
	}
}

func TestFigure6Errors(t *testing.T) {
	d := referenceDataset(t)
	boundary := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := Figure6(d, 99, 0, boundary); err == nil {
		t.Error("unknown system: want error")
	}
	// A node with almost no failures cannot support the study.
	if _, err := Figure6(d, 20, 0, boundary); err == nil {
		t.Error("node 0 has too little early data: want error")
	}
}

func TestRepairTimeByCause(t *testing.T) {
	d := referenceDataset(t)
	rows, err := RepairTimeByCause(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // 6 causes + aggregate
		t.Fatalf("got %d rows", len(rows))
	}
	byCause := make(map[failures.RootCause]RepairStats)
	for _, r := range rows[:6] {
		byCause[r.Cause] = r
	}
	// Table 2 shape: environment repairs have the highest median and the
	// lowest variability; software/hardware/unknown have mean >> median
	// and very large C².
	env := byCause[failures.CauseEnvironment]
	for _, c := range failures.Causes() {
		if c == failures.CauseEnvironment {
			continue
		}
		if byCause[c].Median >= env.Median {
			t.Errorf("%v median %.0f should be below environment %.0f", c, byCause[c].Median, env.Median)
		}
		if byCause[c].C2 < env.C2 {
			t.Errorf("%v C² %.1f should exceed environment %.1f", c, byCause[c].C2, env.C2)
		}
	}
	for _, c := range []failures.RootCause{failures.CauseSoftware, failures.CauseUnknown} {
		if byCause[c].Mean < 4*byCause[c].Median {
			t.Errorf("%v mean %.0f should dwarf median %.0f", c, byCause[c].Mean, byCause[c].Median)
		}
	}
	// Aggregate row: mean dominated by hardware/software, so it falls
	// within the per-cause extremes.
	agg := rows[6]
	if agg.Cause != 0 {
		t.Fatalf("aggregate row cause = %v", agg.Cause)
	}
	if agg.N < byCause[failures.CauseHardware].N {
		t.Error("aggregate N must exceed any single cause's N")
	}
}

func TestRepairTimeFits(t *testing.T) {
	d := referenceDataset(t)
	study, err := RepairTimeFits(d)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 7(a): lognormal is the best fit; exponential the worst.
	best, err := study.LogNormalBest()
	if err != nil {
		t.Fatal(err)
	}
	if !best {
		winner, _ := study.Fits.Best()
		t.Errorf("best repair fit = %v, paper: lognormal", winner.Family)
	}
	exp, ok := study.Fits.ByFamily(dist.FamilyExponential)
	if !ok || exp.Err != nil {
		t.Fatal("exponential fit missing")
	}
	lgn, _ := study.Fits.ByFamily(dist.FamilyLogNormal)
	if exp.NLL <= lgn.NLL {
		t.Error("exponential should fit repair times much worse than lognormal")
	}
}

func TestRepairTimePerSystem(t *testing.T) {
	d := referenceDataset(t)
	catalog := lanl.Catalog()
	repairs, err := RepairTimePerSystem(d, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 22 {
		t.Fatalf("got %d systems", len(repairs))
	}
	// Figure 7(b,c): same hardware type => similar medians; different
	// types differ strongly. Type E systems span 128-1024 nodes yet should
	// stay within ~2.5x of each other.
	cons := HWTypeRepairConsistency(repairs)
	if v, ok := cons["E"]; !ok || v > 2.5 {
		t.Errorf("type E median repair spread = %.2f, want small", v)
	}
	// Cross-type contrast: G systems repair much slower than E systems.
	var eMed, gMed float64
	var eN, gN int
	for _, r := range repairs {
		switch r.HW {
		case "E":
			eMed += r.MedianMinutes * float64(r.N)
			eN += r.N
		case "G":
			gMed += r.MedianMinutes * float64(r.N)
			gN += r.N
		}
	}
	if eN == 0 || gN == 0 {
		t.Fatal("missing E or G repairs")
	}
	if gMed/float64(gN) < 2*eMed/float64(eN) {
		t.Errorf("type G median repair (%.0f) should far exceed type E (%.0f)",
			gMed/float64(gN), eMed/float64(eN))
	}
}

func TestRepairErrors(t *testing.T) {
	empty, err := failures.NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RepairTimeByCause(empty); err == nil {
		t.Error("empty: want error")
	}
	if _, err := RepairTimeFits(empty); err == nil {
		t.Error("empty: want error")
	}
	if _, err := RepairTimePerSystem(empty, lanl.Catalog()); err == nil {
		t.Error("empty: want error")
	}
	if got := HWTypeRepairConsistency(nil); len(got) != 0 {
		t.Error("nil repairs should give empty map")
	}
}
