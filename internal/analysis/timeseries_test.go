package analysis

import (
	"math"
	"testing"
	"time"

	"hpcfail/internal/failures"
	"hpcfail/internal/lanl"
)

func TestMonthlySeries(t *testing.T) {
	t0 := time.Date(2000, 1, 15, 12, 0, 0, 0, time.UTC)
	mk := func(dayOffset, repairMin int) failures.Record {
		start := t0.AddDate(0, 0, dayOffset)
		return failures.Record{
			System: 1, Node: 0, HW: "E",
			Workload: failures.WorkloadCompute, Cause: failures.CauseHardware,
			Start: start, End: start.Add(time.Duration(repairMin) * time.Minute),
		}
	}
	d, err := failures.NewDataset([]failures.Record{
		mk(0, 30), mk(1, 60), // January
		mk(40, 90), // late February
		// March empty.
		mk(80, 10), // early April
	})
	if err != nil {
		t.Fatal(err)
	}
	series, err := MonthlySeries(d, t0, time.Date(2000, 5, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("months = %d", len(series))
	}
	if series[0].Failures != 2 || series[0].DowntimeMinutes != 90 {
		t.Fatalf("january = %+v", series[0])
	}
	if series[0].MedianRepairMinutes != 45 {
		t.Fatalf("january median = %g", series[0].MedianRepairMinutes)
	}
	if series[1].Failures != 1 || series[2].Failures != 0 || series[3].Failures != 1 {
		t.Fatalf("series = %+v", series)
	}
	if series[2].MedianRepairMinutes != 0 {
		t.Fatal("empty month should have zero median")
	}
	// Months align to calendar starts.
	if series[1].Month != time.Date(2000, 2, 1, 0, 0, 0, 0, time.UTC) {
		t.Fatalf("month boundary = %v", series[1].Month)
	}
}

func TestMonthlySeriesErrors(t *testing.T) {
	empty, err := failures.NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	month := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	if _, err := MonthlySeries(empty, month, month.AddDate(0, 2, 0)); err == nil {
		t.Error("empty dataset: want error")
	}
	d := referenceDataset(t)
	if _, err := MonthlySeries(d, month, month); err == nil {
		t.Error("empty range: want error")
	}
}

func TestMonthlySeriesOnReferenceTrace(t *testing.T) {
	d := referenceDataset(t).BySystem(19)
	sys, err := lanl.SystemByID(19)
	if err != nil {
		t.Fatal(err)
	}
	series, err := MonthlySeries(d, sys.Start, sys.End)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range series {
		total += p.Failures
	}
	if total != d.Len() {
		t.Fatalf("series total %d != records %d", total, d.Len())
	}
	// Ramp shape: the peak month comes well after the start.
	peak, err := PeakMonth(series)
	if err != nil {
		t.Fatal(err)
	}
	if peak < 6 {
		t.Errorf("system 19 peak month = %d, expected a late ramp peak", peak)
	}
}

func TestMovingAverage(t *testing.T) {
	series := []MonthlyPoint{
		{Failures: 10}, {Failures: 20}, {Failures: 30}, {Failures: 40},
	}
	ma, err := MovingAverage(series, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{15, 20, 30, 35}
	for i := range want {
		if math.Abs(ma[i]-want[i]) > 1e-12 {
			t.Fatalf("ma = %v, want %v", ma, want)
		}
	}
	// Window 1 is the identity.
	ma, err = MovingAverage(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ma[0] != 10 || ma[3] != 40 {
		t.Fatalf("window-1 ma = %v", ma)
	}
	if _, err := MovingAverage(series, 2); err == nil {
		t.Error("even window: want error")
	}
	if _, err := MovingAverage(nil, 3); err == nil {
		t.Error("empty series: want error")
	}
	if _, err := PeakMonth(nil); err == nil {
		t.Error("empty peak: want error")
	}
}
