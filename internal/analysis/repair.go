package analysis

import (
	"context"
	"fmt"

	"hpcfail/internal/dist"
	"hpcfail/internal/failures"
	"hpcfail/internal/lanl"
	"hpcfail/internal/stats"
)

// RepairStats is one column of Table 2: the repair-time statistics of one
// root-cause category (minutes).
type RepairStats struct {
	Cause failures.RootCause
	// N is the number of repairs in the category.
	N int
	// Mean, Median, StdDev are in minutes.
	Mean, Median, StdDev float64
	// C2 is the squared coefficient of variation, the paper's variability
	// measure (Table 2 bottom row). NaN when the category's mean repair
	// time is zero (C² undefined); the report layer renders that as
	// "undef".
	C2 float64
}

// RepairTimeByCause computes Table 2: repair-time statistics per root
// cause, plus the aggregate across all causes as a final entry with cause
// zero value replaced by the "all" marker (Cause == 0 is never valid, so
// callers can detect it; the report layer labels it "All").
func RepairTimeByCause(d *failures.Dataset) ([]RepairStats, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("repair time by cause: %w", failures.ErrNoRecords)
	}
	out := make([]RepairStats, 0, len(failures.Causes())+1)
	for _, c := range failures.Causes() {
		sub := d.ByCause(c)
		rs, err := repairStats(sub.RepairTimes())
		if err != nil {
			return nil, fmt.Errorf("repair stats for %v: %w", c, err)
		}
		rs.Cause = c
		out = append(out, rs)
	}
	all, err := repairStats(d.RepairTimes())
	if err != nil {
		return nil, fmt.Errorf("repair stats for all causes: %w", err)
	}
	out = append(out, all) // Cause left zero: the aggregate row.
	return out, nil
}

func repairStats(minutes []float64) (RepairStats, error) {
	s, err := stats.Summarize(minutes)
	if err != nil {
		return RepairStats{}, err
	}
	return RepairStats{
		N:      s.N,
		Mean:   s.Mean,
		Median: s.Median,
		StdDev: s.StdDev,
		C2:     s.C2,
	}, nil
}

// RepairFitStudy is Figure 7(a): the four standard distributions fitted to
// all repair times.
type RepairFitStudy struct {
	// Minutes are the repair times used for fitting.
	Minutes []float64
	Summary stats.Summary
	// Fits ranks the four standard families by NLL.
	Fits *dist.Comparison
}

// RepairTimeFits computes Figure 7(a) on all repair times in the dataset.
func RepairTimeFits(d *failures.Dataset) (*RepairFitStudy, error) {
	return RepairTimeFitsWith(context.Background(), seqFitter{}, d)
}

// RepairTimeFitsWith is RepairTimeFits with the fitting delegated to an
// explicit Fitter (e.g. a shared *engine.Engine).
func RepairTimeFitsWith(ctx context.Context, fitter Fitter, d *failures.Dataset) (*RepairFitStudy, error) {
	minutes := d.RepairTimes()
	if len(minutes) < 10 {
		return nil, fmt.Errorf("repair time fits: %d repairs, need >= 10: %w",
			len(minutes), dist.ErrInsufficientData)
	}
	summary, err := stats.Summarize(minutes)
	if err != nil {
		return nil, fmt.Errorf("repair time fits: %w", err)
	}
	fits, err := fitAllVia(ctx, fitter, minutes)
	if err != nil {
		return nil, fmt.Errorf("repair time fits: %w", err)
	}
	return &RepairFitStudy{Minutes: minutes, Summary: summary, Fits: fits}, nil
}

// LogNormalBest reports whether the lognormal has the lowest NLL — the
// paper's Section 6 conclusion.
func (s *RepairFitStudy) LogNormalBest() (bool, error) {
	best, err := s.Fits.Best()
	if err != nil {
		return false, err
	}
	return best.Family == dist.FamilyLogNormal, nil
}

// SystemRepair is one bar of Figure 7(b)/(c): a system's mean and median
// repair time.
type SystemRepair struct {
	System int
	HW     failures.HWType
	N      int
	// MeanMinutes and MedianMinutes are the Figure 7(b) and 7(c) bars.
	MeanMinutes, MedianMinutes float64
}

// RepairTimePerSystem computes Figure 7(b, c) for every catalog system
// present in the dataset.
func RepairTimePerSystem(d *failures.Dataset, catalog []lanl.System) ([]SystemRepair, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("repair time per system: %w", failures.ErrNoRecords)
	}
	out := make([]SystemRepair, 0, len(catalog))
	for _, sys := range catalog {
		minutes := d.BySystem(sys.ID).RepairTimes()
		sr := SystemRepair{System: sys.ID, HW: sys.HW, N: len(minutes)}
		if len(minutes) > 0 {
			s, err := stats.Summarize(minutes)
			if err != nil {
				return nil, fmt.Errorf("repair time for system %d: %w", sys.ID, err)
			}
			sr.MeanMinutes = s.Mean
			sr.MedianMinutes = s.Median
		}
		out = append(out, sr)
	}
	return out, nil
}

// HWTypeRepairConsistency quantifies the paper's claim that repair times
// depend on hardware type rather than system size: for each hardware type
// with at least two systems it returns max/min of the median repair times
// within the type.
func HWTypeRepairConsistency(repairs []SystemRepair) map[failures.HWType]float64 {
	byHW := make(map[failures.HWType][]float64)
	for _, r := range repairs {
		if r.N > 0 && r.MedianMinutes > 0 {
			byHW[r.HW] = append(byHW[r.HW], r.MedianMinutes)
		}
	}
	out := make(map[failures.HWType]float64)
	for hw, medians := range byHW {
		if len(medians) < 2 {
			continue
		}
		min, max := medians[0], medians[0]
		for _, m := range medians {
			if m < min {
				min = m
			}
			if m > max {
				max = m
			}
		}
		out[hw] = max / min
	}
	return out
}
