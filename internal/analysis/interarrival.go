package analysis

import (
	"context"
	"fmt"
	"time"

	"hpcfail/internal/dist"
	"hpcfail/internal/failures"
	"hpcfail/internal/stats"
)

// InterarrivalView selects whose clock the time between failures is
// measured on (Section 5.3 takes both views).
type InterarrivalView int

// The two views of the failure process.
const (
	// ViewNode measures time between failures of a single node.
	ViewNode InterarrivalView = iota + 1
	// ViewSystem measures time between subsequent failures anywhere in the
	// system.
	ViewSystem
)

// String names the view.
func (v InterarrivalView) String() string {
	switch v {
	case ViewNode:
		return "per-node"
	case ViewSystem:
		return "system-wide"
	default:
		return fmt.Sprintf("InterarrivalView(%d)", int(v))
	}
}

// InterarrivalStudy is one panel of Figure 6: the empirical distribution of
// times between failures over one window, fitted by the four standard
// distributions.
type InterarrivalStudy struct {
	View InterarrivalView
	// Window labels the analysis period (e.g. "1996-1999").
	Window string
	// Seconds are the positive interarrival times in seconds.
	Seconds []float64
	// ZeroFraction is the fraction of interarrivals that were exactly
	// zero, before they were dropped for fitting (Figure 6c's defining
	// feature: >30% early in system 20).
	ZeroFraction float64
	// Summary describes the positive interarrivals.
	Summary stats.Summary
	// Fits compares the four standard families, best first.
	Fits *dist.Comparison
	// WeibullShape is the fitted Weibull shape parameter; the paper's
	// headline is 0.7–0.8 with decreasing hazard.
	WeibullShape float64
	// HazardDecreasing reports whether the Weibull fit implies a
	// decreasing hazard rate.
	HazardDecreasing bool
}

// StudyInterarrivals fits the four standard distributions to the time
// between failures in d (already filtered to the node or system and window
// of interest), taking the given view purely as labeling. It fits
// sequentially; StudyInterarrivalsWith accepts an engine-backed Fitter.
func StudyInterarrivals(d *failures.Dataset, view InterarrivalView, window string) (*InterarrivalStudy, error) {
	return StudyInterarrivalsWith(context.Background(), seqFitter{}, d, view, window)
}

// StudyInterarrivalsWith is StudyInterarrivals with the fitting delegated to
// an explicit Fitter (e.g. a shared *engine.Engine, which memoizes fits and
// bounds concurrency).
func StudyInterarrivalsWith(ctx context.Context, fitter Fitter, d *failures.Dataset, view InterarrivalView, window string) (*InterarrivalStudy, error) {
	xs := d.PositiveInterarrivals()
	if len(xs) < 10 {
		return nil, fmt.Errorf("interarrival study %s %s: %d positive interarrivals, need >= 10: %w",
			view, window, len(xs), dist.ErrInsufficientData)
	}
	summary, err := stats.Summarize(xs)
	if err != nil {
		return nil, fmt.Errorf("interarrival study: %w", err)
	}
	fits, err := fitAllVia(ctx, fitter, xs)
	if err != nil {
		return nil, fmt.Errorf("interarrival study: %w", err)
	}
	study := &InterarrivalStudy{
		View:         view,
		Window:       window,
		Seconds:      xs,
		ZeroFraction: d.ZeroInterarrivalFraction(),
		Summary:      summary,
		Fits:         fits,
	}
	if wb, ok := fits.ByFamily(dist.FamilyWeibull); ok && wb.Err == nil {
		weibull, isWeibull := wb.Dist.(dist.Weibull)
		if !isWeibull {
			return nil, fmt.Errorf("interarrival study: weibull fit has unexpected type %T", wb.Dist)
		}
		study.WeibullShape = weibull.Shape()
		study.HazardDecreasing = weibull.HazardDecreasing()
	}
	return study, nil
}

// BestFamily returns the family with the lowest negative log-likelihood.
func (s *InterarrivalStudy) BestFamily() (dist.Family, error) {
	best, err := s.Fits.Best()
	if err != nil {
		return 0, err
	}
	return best.Family, nil
}

// ExponentialAdequate reports whether the exponential fit is within margin
// (e.g. 1.02 = 2%) of the best NLL — the paper's finding is that it never
// is, because the data's C² far exceeds 1.
func (s *InterarrivalStudy) ExponentialAdequate(margin float64) (bool, error) {
	best, err := s.Fits.Best()
	if err != nil {
		return false, err
	}
	exp, ok := s.Fits.ByFamily(dist.FamilyExponential)
	if !ok || exp.Err != nil {
		return false, fmt.Errorf("interarrival study: no exponential fit")
	}
	if best.Family == dist.FamilyExponential {
		return true, nil
	}
	return exp.NLL <= best.NLL*margin, nil
}

// Figure6Panels bundles the four panels of Figure 6 for a system: per-node
// and system-wide views, each split at a boundary date into early and late
// production.
type Figure6Panels struct {
	NodeEarly   *InterarrivalStudy
	NodeLate    *InterarrivalStudy
	SystemEarly *InterarrivalStudy
	SystemLate  *InterarrivalStudy
}

// Figure6 reproduces the paper's Figure 6 layout: system and node fixed
// (the paper uses system 20, node 22), windows split at the boundary
// (paper: end of 1999).
func Figure6(d *failures.Dataset, system, node int, boundary time.Time) (*Figure6Panels, error) {
	return Figure6With(context.Background(), seqFitter{}, d, system, node, boundary)
}

// Figure6With is Figure 6 with the four panel fits delegated to an explicit
// Fitter; with an engine-backed fitter the per-panel model comparisons are
// memoized and bounded by the engine's worker pool.
func Figure6With(ctx context.Context, fitter Fitter, d *failures.Dataset, system, node int, boundary time.Time) (*Figure6Panels, error) {
	sys := d.BySystem(system)
	if sys.Len() == 0 {
		return nil, fmt.Errorf("figure 6: system %d: %w", system, failures.ErrNoRecords)
	}
	first, last, err := sys.TimeSpan()
	if err != nil {
		return nil, fmt.Errorf("figure 6: %w", err)
	}
	earlyWindow := fmt.Sprintf("%d-%d", first.Year(), boundary.Year()-1)
	lateWindow := fmt.Sprintf("%d-%d", boundary.Year(), last.Year())
	end := last.Add(time.Second)

	nodeData := sys.ByNode(system, node)
	panels := &Figure6Panels{}
	panels.NodeEarly, err = StudyInterarrivalsWith(ctx, fitter, nodeData.Between(first, boundary), ViewNode, earlyWindow)
	if err != nil {
		return nil, fmt.Errorf("figure 6 node early: %w", err)
	}
	panels.NodeLate, err = StudyInterarrivalsWith(ctx, fitter, nodeData.Between(boundary, end), ViewNode, lateWindow)
	if err != nil {
		return nil, fmt.Errorf("figure 6 node late: %w", err)
	}
	panels.SystemEarly, err = StudyInterarrivalsWith(ctx, fitter, sys.Between(first, boundary), ViewSystem, earlyWindow)
	if err != nil {
		return nil, fmt.Errorf("figure 6 system early: %w", err)
	}
	panels.SystemLate, err = StudyInterarrivalsWith(ctx, fitter, sys.Between(boundary, end), ViewSystem, lateWindow)
	if err != nil {
		return nil, fmt.Errorf("figure 6 system late: %w", err)
	}
	return panels, nil
}
