// Package analysis implements the paper's experiments as reusable
// functions: root-cause breakdowns (Figure 1), failure rates across systems
// and nodes (Figures 2 and 3), failure rates over time (Figures 4 and 5),
// time-between-failure studies (Figure 6) and repair-time studies (Table 2,
// Figure 7). Each function consumes a failures.Dataset and returns a typed
// result that internal/report can render.
package analysis

import (
	"fmt"
	"time"

	"hpcfail/internal/failures"
)

// CauseBreakdown is the root-cause composition of one group of failures
// (one bar of Figure 1).
type CauseBreakdown struct {
	// Label identifies the group (hardware type, or "All systems").
	Label string
	// Total is the number of failures (Figure 1a) or the total downtime in
	// minutes (Figure 1b) in the group.
	Total float64
	// Share maps each root cause to its fraction of Total, in [0, 1].
	Share map[failures.RootCause]float64
}

// Percent returns the share of a cause as a percentage.
func (b CauseBreakdown) Percent(c failures.RootCause) float64 {
	return 100 * b.Share[c]
}

// RootCauseBreakdown computes Figure 1(a): the relative frequency of the
// six root-cause categories for each listed hardware type plus the
// aggregate over the whole dataset.
func RootCauseBreakdown(d *failures.Dataset, hwTypes []failures.HWType) ([]CauseBreakdown, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("root cause breakdown: %w", failures.ErrNoRecords)
	}
	out := make([]CauseBreakdown, 0, len(hwTypes)+1)
	for _, hw := range hwTypes {
		sub := d.ByHW(hw)
		bd, err := countBreakdown(string(hw), sub)
		if err != nil {
			return nil, fmt.Errorf("root cause breakdown for type %s: %w", hw, err)
		}
		out = append(out, bd)
	}
	all, err := countBreakdown("All systems", d)
	if err != nil {
		return nil, err
	}
	return append(out, all), nil
}

func countBreakdown(label string, d *failures.Dataset) (CauseBreakdown, error) {
	if d.Len() == 0 {
		return CauseBreakdown{}, failures.ErrNoRecords
	}
	counts := d.CountByCause()
	total := float64(d.Len())
	share := make(map[failures.RootCause]float64, len(counts))
	for _, c := range failures.Causes() {
		share[c] = float64(counts[c]) / total
	}
	return CauseBreakdown{Label: label, Total: total, Share: share}, nil
}

// DowntimeBreakdown computes Figure 1(b): the fraction of total downtime
// attributed to each root cause, per hardware type and in aggregate.
func DowntimeBreakdown(d *failures.Dataset, hwTypes []failures.HWType) ([]CauseBreakdown, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("downtime breakdown: %w", failures.ErrNoRecords)
	}
	out := make([]CauseBreakdown, 0, len(hwTypes)+1)
	for _, hw := range hwTypes {
		sub := d.ByHW(hw)
		bd, err := downtimeBreakdown(string(hw), sub)
		if err != nil {
			return nil, fmt.Errorf("downtime breakdown for type %s: %w", hw, err)
		}
		out = append(out, bd)
	}
	all, err := downtimeBreakdown("All systems", d)
	if err != nil {
		return nil, err
	}
	return append(out, all), nil
}

func downtimeBreakdown(label string, d *failures.Dataset) (CauseBreakdown, error) {
	if d.Len() == 0 {
		return CauseBreakdown{}, failures.ErrNoRecords
	}
	byCause := d.DowntimeByCause()
	var total time.Duration
	for _, dt := range byCause {
		total += dt
	}
	if total <= 0 {
		return CauseBreakdown{}, fmt.Errorf("downtime breakdown %q: zero total downtime", label)
	}
	share := make(map[failures.RootCause]float64, len(byCause))
	for _, c := range failures.Causes() {
		share[c] = float64(byCause[c]) / float64(total)
	}
	return CauseBreakdown{Label: label, Total: total.Minutes(), Share: share}, nil
}

// DetailShare returns the fraction of ALL failures in d whose low-level
// detail field equals the given detail (e.g. "memory" — Section 4 reports
// memory above 10% of all failures in every system).
func DetailShare(d *failures.Dataset, detail string) (float64, error) {
	if d.Len() == 0 {
		return 0, fmt.Errorf("detail share: %w", failures.ErrNoRecords)
	}
	return float64(d.CountByDetail()[detail]) / float64(d.Len()), nil
}
