package analysis

import (
	"context"

	"hpcfail/internal/dist"
)

// Fitter abstracts how the analyses obtain distribution fits. The default is
// the sequential dist.FitAll; internal/engine satisfies the interface with a
// memoizing concurrent pipeline, and the ...With variants of the analyses
// accept either. Analysis declares the interface on the consumer side so the
// engine can stay free of analysis imports.
type Fitter interface {
	FitAll(ctx context.Context, xs []float64, families ...dist.Family) (*dist.Comparison, error)
}

// seqFitter is the no-dependency default: plain sequential fitting.
type seqFitter struct{}

func (seqFitter) FitAll(ctx context.Context, xs []float64, families ...dist.Family) (*dist.Comparison, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return dist.FitAll(xs, families...)
}

// SequentialFitter returns the default Fitter that fits inline with no
// concurrency or caching.
func SequentialFitter() Fitter { return seqFitter{} }
