package analysis

import (
	"context"

	"hpcfail/internal/dist"
)

// Fitter abstracts how the analyses obtain distribution fits. The default is
// the sequential dist.FitAll; internal/engine satisfies the interface with a
// memoizing concurrent pipeline, and the ...With variants of the analyses
// accept either. Analysis declares the interface on the consumer side so the
// engine can stay free of analysis imports.
type Fitter interface {
	FitAll(ctx context.Context, xs []float64, families ...dist.Family) (*dist.Comparison, error)
}

// SampleFitter is the optional fast path of Fitter: implementations that
// can fit a precomputed dist.Sample directly, reusing its cached transforms
// (log cache, sums, sorted order, ECDF) across all families instead of
// re-deriving them from the raw slice. Both the sequential fitter and
// *engine.Engine implement it; the analyses probe for it with a type
// assertion so third-party Fitters keep working unchanged.
type SampleFitter interface {
	FitAllSample(ctx context.Context, s *dist.Sample, families ...dist.Family) (*dist.Comparison, error)
}

// fitAllVia fits xs through the fitter, taking the SampleFitter fast path
// when the implementation offers one.
func fitAllVia(ctx context.Context, fitter Fitter, xs []float64, families ...dist.Family) (*dist.Comparison, error) {
	if sf, ok := fitter.(SampleFitter); ok {
		return sf.FitAllSample(ctx, dist.NewSample(xs), families...)
	}
	return fitter.FitAll(ctx, xs, families...)
}

// seqFitter is the no-dependency default: plain sequential fitting.
type seqFitter struct{}

func (seqFitter) FitAll(ctx context.Context, xs []float64, families ...dist.Family) (*dist.Comparison, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return dist.FitAll(xs, families...)
}

func (seqFitter) FitAllSample(ctx context.Context, s *dist.Sample, families ...dist.Family) (*dist.Comparison, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return dist.FitAllSample(s, families...)
}

// SequentialFitter returns the default Fitter that fits inline with no
// concurrency or caching.
func SequentialFitter() Fitter { return seqFitter{} }
