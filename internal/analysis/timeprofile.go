package analysis

import (
	"fmt"
	"time"

	"hpcfail/internal/failures"
)

// LifecyclePoint is one month of a system's lifetime failure-rate curve
// (Figure 4), broken down by root cause.
type LifecyclePoint struct {
	// Month is the system age in months (0-based).
	Month int
	// Total is the number of failures in the month.
	Total int
	// ByCause splits the month's failures by root cause.
	ByCause map[failures.RootCause]int
}

// LifecycleCurve computes Figure 4 for one system: failures per month of
// production age, from the system's first production month through its
// last, with a per-cause breakdown.
func LifecycleCurve(d *failures.Dataset, system int, productionStart time.Time, months int) ([]LifecyclePoint, error) {
	if months <= 0 {
		return nil, fmt.Errorf("lifecycle curve: non-positive month count %d", months)
	}
	sub := d.BySystem(system)
	if sub.Len() == 0 {
		return nil, fmt.Errorf("lifecycle curve: system %d: %w", system, failures.ErrNoRecords)
	}
	points := make([]LifecyclePoint, months)
	for i := range points {
		points[i] = LifecyclePoint{Month: i, ByCause: make(map[failures.RootCause]int)}
	}
	const daysPerMonth = 30.44
	for _, r := range sub.Records() {
		age := r.Start.Sub(productionStart).Hours() / 24 / daysPerMonth
		m := int(age)
		if m < 0 || m >= months {
			continue
		}
		points[m].Total++
		points[m].ByCause[r.Cause]++
	}
	return points, nil
}

// LifecycleShape classifies a lifecycle curve as one of the paper's two
// patterns.
type LifecycleShape int

// The two observed shapes plus an indeterminate bucket.
const (
	// ShapeEarlyDrop is Figure 4(a): the rate is highest at the start and
	// decays (types E and F).
	ShapeEarlyDrop LifecycleShape = iota + 1
	// ShapeRampThenDrop is Figure 4(b): the rate grows for many months
	// before decaying (types D and G).
	ShapeRampThenDrop
	// ShapeFlat is neither (not observed in the paper's data, but the
	// classifier must return something for degenerate inputs).
	ShapeFlat
)

// String names the shape.
func (s LifecycleShape) String() string {
	switch s {
	case ShapeEarlyDrop:
		return "early-drop"
	case ShapeRampThenDrop:
		return "ramp-then-drop"
	case ShapeFlat:
		return "flat"
	default:
		return fmt.Sprintf("LifecycleShape(%d)", int(s))
	}
}

// ClassifyLifecycle decides which Figure 4 pattern a monthly curve follows
// by comparing the first quarter of the curve against the rate around its
// peak. If the peak occurs in the first quarter and the tail is lower, the
// curve is early-drop; if the peak occurs later and exceeds the start, it
// ramps.
func ClassifyLifecycle(points []LifecyclePoint) LifecycleShape {
	if len(points) < 6 {
		return ShapeFlat
	}
	// Smooth with a 3-month window to suppress noise.
	smooth := make([]float64, len(points))
	for i := range points {
		total, n := 0, 0
		for j := i - 1; j <= i+1; j++ {
			if j >= 0 && j < len(points) {
				total += points[j].Total
				n++
			}
		}
		smooth[i] = float64(total) / float64(n)
	}
	peakIdx, peakVal := 0, smooth[0]
	for i, v := range smooth {
		if v > peakVal {
			peakIdx, peakVal = i, v
		}
	}
	if peakVal == 0 {
		return ShapeFlat
	}
	start := smooth[0]
	quarter := len(points) / 4
	switch {
	case peakIdx >= quarter && peakVal > 1.5*start:
		return ShapeRampThenDrop
	case peakIdx < quarter:
		return ShapeEarlyDrop
	default:
		return ShapeFlat
	}
}

// TimeOfDayProfile is Figure 5: failure counts by hour of day and by day of
// week across a dataset.
type TimeOfDayProfile struct {
	// ByHour[h] counts failures that started in hour h (0–23).
	ByHour [24]int
	// ByWeekday[d] counts failures by day of week (0 = Sunday).
	ByWeekday [7]int
}

// NewTimeOfDayProfile computes Figure 5 for a dataset.
func NewTimeOfDayProfile(d *failures.Dataset) (*TimeOfDayProfile, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("time-of-day profile: %w", failures.ErrNoRecords)
	}
	p := &TimeOfDayProfile{}
	for _, r := range d.Records() {
		p.ByHour[r.Start.Hour()]++
		p.ByWeekday[int(r.Start.Weekday())]++
	}
	return p, nil
}

// PeakTroughRatio returns the ratio of the busiest to the quietest hour —
// the paper reports roughly 2.
func (p *TimeOfDayProfile) PeakTroughRatio() float64 {
	peak, trough := p.ByHour[0], p.ByHour[0]
	for _, c := range p.ByHour[1:] {
		if c > peak {
			peak = c
		}
		if c < trough {
			trough = c
		}
	}
	if trough == 0 {
		return 0
	}
	return float64(peak) / float64(trough)
}

// WeekdayWeekendRatio returns the average weekday rate over the average
// weekend rate — the paper reports nearly 2.
func (p *TimeOfDayProfile) WeekdayWeekendRatio() float64 {
	weekday := p.ByWeekday[1] + p.ByWeekday[2] + p.ByWeekday[3] + p.ByWeekday[4] + p.ByWeekday[5]
	weekend := p.ByWeekday[0] + p.ByWeekday[6]
	if weekend == 0 {
		return 0
	}
	return (float64(weekday) / 5) / (float64(weekend) / 2)
}
