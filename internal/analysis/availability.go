package analysis

import (
	"fmt"
	"sort"

	"hpcfail/internal/failures"
	"hpcfail/internal/lanl"
	"hpcfail/internal/stats"
)

// SystemAvailability is the steady-state availability estimate of one
// system derived from its failure record: MTBF/(MTBF+MTTR) per node,
// aggregated over the system.
type SystemAvailability struct {
	System int
	HW     failures.HWType
	// FailuresPerNodeYear is the mean per-node failure rate.
	FailuresPerNodeYear float64
	// MTTRMinutes is the mean repair time.
	MTTRMinutes float64
	// Availability is the steady-state node availability estimate.
	Availability float64
	// ExpectedDownMinutesPerYear is the expected per-node downtime.
	ExpectedDownMinutesPerYear float64
}

// AvailabilityPerSystem estimates each catalog system's availability from
// the dataset — the operator-facing composite of Figures 2 and 7.
func AvailabilityPerSystem(d *failures.Dataset, catalog []lanl.System) ([]SystemAvailability, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("availability: %w", failures.ErrNoRecords)
	}
	const minutesPerYear = 365.25 * 24 * 60
	out := make([]SystemAvailability, 0, len(catalog))
	for _, sys := range catalog {
		sub := d.BySystem(sys.ID)
		sa := SystemAvailability{System: sys.ID, HW: sys.HW, Availability: 1}
		if sub.Len() > 0 {
			years := sys.ProductionYears()
			sa.FailuresPerNodeYear = float64(sub.Len()) / years / float64(sys.Nodes)
			repairs := sub.RepairTimes()
			if len(repairs) > 0 {
				sa.MTTRMinutes = stats.Mean(repairs)
			}
			downPerYear := sa.FailuresPerNodeYear * sa.MTTRMinutes
			sa.ExpectedDownMinutesPerYear = downPerYear
			sa.Availability = 1 - downPerYear/minutesPerYear
			if sa.Availability < 0 {
				sa.Availability = 0
			}
		}
		out = append(out, sa)
	}
	return out, nil
}

// DetailCount is one low-level root cause with its share of ALL failures
// in the group (Section 4's detailed breakdown).
type DetailCount struct {
	// Detail is the low-level cause (empty string = unspecified).
	Detail string
	// Count is the number of records.
	Count int
	// Share is Count over the group's total records.
	Share float64
}

// DetailBreakdown returns the low-level root causes of a dataset sorted by
// frequency, each with its share of all failures. topK <= 0 returns all.
func DetailBreakdown(d *failures.Dataset, topK int) ([]DetailCount, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("detail breakdown: %w", failures.ErrNoRecords)
	}
	counts := d.CountByDetail()
	out := make([]DetailCount, 0, len(counts))
	total := float64(d.Len())
	for detail, n := range counts {
		out = append(out, DetailCount{Detail: detail, Count: n, Share: float64(n) / total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Detail < out[j].Detail
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out, nil
}

// TopDetail returns the most frequent non-empty low-level cause — the
// quantity behind Section 4's "memory was the single most common low-level
// root cause for all systems, except for system E [CPU]".
func TopDetail(d *failures.Dataset) (DetailCount, error) {
	all, err := DetailBreakdown(d, 0)
	if err != nil {
		return DetailCount{}, err
	}
	for _, dc := range all {
		if dc.Detail != "" {
			return dc, nil
		}
	}
	return DetailCount{}, fmt.Errorf("detail breakdown: no detailed causes recorded: %w",
		failures.ErrNoRecords)
}
