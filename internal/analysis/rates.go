package analysis

import (
	"fmt"

	"hpcfail/internal/dist"
	"hpcfail/internal/failures"
	"hpcfail/internal/lanl"
	"hpcfail/internal/stats"
)

// SystemRate is one bar of Figure 2: a system's average failure rate over
// its production time, raw and normalized by processor count.
type SystemRate struct {
	System int
	HW     failures.HWType
	// Failures is the total number of records for the system.
	Failures int
	// PerYear is the average number of failures per year of production
	// (Figure 2a).
	PerYear float64
	// PerYearPerProc is PerYear divided by the processor count
	// (Figure 2b).
	PerYearPerProc float64
}

// FailureRates computes Figure 2 for every system in the catalog that has
// records in the dataset.
func FailureRates(d *failures.Dataset, catalog []lanl.System) ([]SystemRate, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("failure rates: %w", failures.ErrNoRecords)
	}
	out := make([]SystemRate, 0, len(catalog))
	for _, sys := range catalog {
		sub := d.BySystem(sys.ID)
		years := sys.ProductionYears()
		if years <= 0 {
			return nil, fmt.Errorf("failure rates: system %d has empty production window", sys.ID)
		}
		perYear := float64(sub.Len()) / years
		out = append(out, SystemRate{
			System:         sys.ID,
			HW:             sys.HW,
			Failures:       sub.Len(),
			PerYear:        perYear,
			PerYearPerProc: perYear / float64(sys.Procs),
		})
	}
	return out, nil
}

// RateSpread summarizes how strongly rates vary across a set of systems —
// the paper's observation that raw rates range 20–1000+ per year while
// normalized rates within a hardware type are nearly constant.
type RateSpread struct {
	Min, Max float64
	// MaxOverMin is Max/Min, the dynamic range.
	MaxOverMin float64
}

// SpreadPerYear computes the dynamic range of raw failure rates, ignoring
// systems with no failures.
func SpreadPerYear(rates []SystemRate) (RateSpread, error) {
	return spread(rates, func(r SystemRate) float64 { return r.PerYear })
}

// SpreadPerYearPerProc computes the dynamic range of normalized rates.
func SpreadPerYearPerProc(rates []SystemRate) (RateSpread, error) {
	return spread(rates, func(r SystemRate) float64 { return r.PerYearPerProc })
}

func spread(rates []SystemRate, metric func(SystemRate) float64) (RateSpread, error) {
	var vals []float64
	for _, r := range rates {
		if v := metric(r); v > 0 {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return RateSpread{}, fmt.Errorf("rate spread: %w", failures.ErrNoRecords)
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return RateSpread{Min: min, Max: max, MaxOverMin: max / min}, nil
}

// NodeCountStudy is the Figure 3 analysis: the distribution of per-node
// failure counts within one system, and how well Poisson, normal and
// lognormal distributions describe the compute-only counts.
type NodeCountStudy struct {
	System int
	// CountsByNode maps node ID to its total failures (Figure 3a).
	CountsByNode map[int]int
	// ComputeCounts are the counts of compute-only nodes in node order
	// (Figure 3b fits exclude the graphics nodes).
	ComputeCounts []int
	// Summary describes the compute-only counts.
	Summary stats.Summary
	// Poisson is the fitted Poisson and its negative log-likelihood.
	Poisson    dist.Poisson
	PoissonNLL float64
	PoissonErr error
	Normal     dist.Normal
	NormalNLL  float64
	NormalErr  error
	LogNormal  dist.LogNormal
	LogNormNLL float64
	LogNormErr error
	// PoissonRejected reports the paper's conclusion for this system: the
	// Poisson fit is worse (higher NLL) than both normal and lognormal.
	PoissonRejected bool
}

// PerNodeCounts computes Figure 3 for one system. Nodes with zero failures
// during the window still count (they appear with count 0), which requires
// the catalog to know how many nodes exist.
func PerNodeCounts(d *failures.Dataset, sys lanl.System) (*NodeCountStudy, error) {
	sub := d.BySystem(sys.ID)
	if sub.Len() == 0 {
		return nil, fmt.Errorf("per-node counts: system %d: %w", sys.ID, failures.ErrNoRecords)
	}
	graphics := make(map[int]bool, len(sys.GraphicsNodes))
	for _, n := range sys.GraphicsNodes {
		graphics[n] = true
	}
	frontend := make(map[int]bool, len(sys.FrontendNodes))
	for _, n := range sys.FrontendNodes {
		frontend[n] = true
	}
	counts := sub.CountByNode()
	study := &NodeCountStudy{System: sys.ID, CountsByNode: counts}
	for node := 0; node < sys.Nodes; node++ {
		if graphics[node] || frontend[node] {
			continue
		}
		study.ComputeCounts = append(study.ComputeCounts, counts[node])
	}
	if len(study.ComputeCounts) < 2 {
		return nil, fmt.Errorf("per-node counts: system %d has %d compute nodes, need >= 2",
			sys.ID, len(study.ComputeCounts))
	}
	vals := make([]float64, len(study.ComputeCounts))
	for i, c := range study.ComputeCounts {
		vals[i] = float64(c)
	}
	summary, err := stats.Summarize(vals)
	if err != nil {
		return nil, fmt.Errorf("per-node counts: %w", err)
	}
	study.Summary = summary

	study.Poisson, study.PoissonErr = dist.FitPoisson(study.ComputeCounts)
	if study.PoissonErr == nil {
		study.PoissonNLL, study.PoissonErr = dist.DiscreteNegLogLikelihood(study.Poisson, study.ComputeCounts)
	}
	// Continuous fits use the counts as real values; zero counts are kept
	// for the normal fit but necessarily dropped for the lognormal.
	study.Normal, study.NormalErr = dist.FitNormal(vals)
	if study.NormalErr == nil {
		study.NormalNLL, study.NormalErr = dist.NegLogLikelihood(study.Normal, vals)
	}
	positive := make([]float64, 0, len(vals))
	for _, v := range vals {
		if v > 0 {
			positive = append(positive, v)
		}
	}
	study.LogNormal, study.LogNormErr = dist.FitLogNormal(positive)
	if study.LogNormErr == nil {
		study.LogNormNLL, study.LogNormErr = dist.NegLogLikelihood(study.LogNormal, positive)
	}
	study.PoissonRejected = study.PoissonErr == nil && study.NormalErr == nil &&
		study.PoissonNLL > study.NormalNLL
	return study, nil
}

// Overdispersion returns the variance-to-mean ratio of the compute-node
// counts. A Poisson process across identical nodes would give ~1; the paper
// finds substantially more.
func (s *NodeCountStudy) Overdispersion() float64 {
	if s.Summary.Mean == 0 {
		return 0
	}
	return s.Summary.Variance / s.Summary.Mean
}
