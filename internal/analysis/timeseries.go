package analysis

import (
	"fmt"
	"time"

	"hpcfail/internal/failures"
	"hpcfail/internal/stats"
)

// MonthlyPoint is one month of a reliability time series.
type MonthlyPoint struct {
	// Month is the first instant of the month (UTC).
	Month time.Time
	// Failures is the number of records starting in the month.
	Failures int
	// DowntimeMinutes is the summed repair time of those records.
	DowntimeMinutes float64
	// MedianRepairMinutes is the month's median repair time (0 when the
	// month has no repairs).
	MedianRepairMinutes float64
}

// MonthlySeries buckets a dataset into calendar months between from and to
// (to exclusive), returning one point per month including empty ones —
// the raw material for dashboards and for eyeballing the Figure 4 shapes
// in wall-clock rather than system-age time.
func MonthlySeries(d *failures.Dataset, from, to time.Time) ([]MonthlyPoint, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("monthly series: %w", failures.ErrNoRecords)
	}
	from = time.Date(from.Year(), from.Month(), 1, 0, 0, 0, 0, time.UTC)
	if !from.Before(to) {
		return nil, fmt.Errorf("monthly series: empty range [%v, %v)", from, to)
	}
	var months []time.Time
	for m := from; m.Before(to); m = m.AddDate(0, 1, 0) {
		months = append(months, m)
	}
	points := make([]MonthlyPoint, len(months))
	repairs := make([][]float64, len(months))
	for i, m := range months {
		points[i].Month = m
	}
	for _, r := range d.Records() {
		if r.Start.Before(from) || !r.Start.Before(to) {
			continue
		}
		idx := (r.Start.Year()-from.Year())*12 + int(r.Start.Month()) - int(from.Month())
		if idx < 0 || idx >= len(points) {
			continue
		}
		points[idx].Failures++
		minutes := r.Downtime().Minutes()
		points[idx].DowntimeMinutes += minutes
		if minutes > 0 {
			repairs[idx] = append(repairs[idx], minutes)
		}
	}
	for i := range points {
		if len(repairs[i]) > 0 {
			med, err := stats.Median(repairs[i])
			if err != nil {
				return nil, fmt.Errorf("monthly series: %w", err)
			}
			points[i].MedianRepairMinutes = med
		}
	}
	return points, nil
}

// PeakMonth returns the series index with the most failures.
func PeakMonth(series []MonthlyPoint) (int, error) {
	if len(series) == 0 {
		return 0, fmt.Errorf("peak month: empty series")
	}
	best := 0
	for i, p := range series {
		if p.Failures > series[best].Failures {
			best = i
		}
	}
	_ = series[best]
	return best, nil
}

// MovingAverage smooths the failure counts of a series with a centered
// window of the given (odd) width, returning one value per month.
func MovingAverage(series []MonthlyPoint, window int) ([]float64, error) {
	if window < 1 || window%2 == 0 {
		return nil, fmt.Errorf("moving average: window %d must be odd and positive", window)
	}
	if len(series) == 0 {
		return nil, fmt.Errorf("moving average: empty series")
	}
	half := window / 2
	out := make([]float64, len(series))
	for i := range series {
		sum, n := 0, 0
		for j := i - half; j <= i+half; j++ {
			if j >= 0 && j < len(series) {
				sum += series[j].Failures
				n++
			}
		}
		out[i] = float64(sum) / float64(n)
	}
	return out, nil
}
