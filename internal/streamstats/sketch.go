package streamstats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmptySketch is returned when a quantile of an empty sketch is taken.
var ErrEmptySketch = errors.New("streamstats: empty sketch")

// ErrNaNSketch is returned when a quantile is taken from a sketch that
// absorbed NaN observations: order statistics are undefined there.
var ErrNaNSketch = errors.New("streamstats: sketch contains NaN observations")

// QuantileSketch is a mergeable, bounded-memory quantile estimator in the
// style of DDSketch: values are counted in geometrically spaced buckets,
// so any reported quantile of a finite nonzero sample is within a factor
// (1 ± eps) of a true sample value at the queried rank. Zeros, negative
// values and ±Inf are tracked exactly in dedicated counters. Construct
// with NewQuantileSketch.
type QuantileSketch struct {
	eps     float64
	lnGamma float64
	gamma   float64
	// minKey and maxKey bound the bucket index range: outside it the
	// representative value would underflow to 0 or overflow past
	// MaxFloat64, and unclamped subnormal inputs would mint tens of
	// thousands of distinct map keys. Magnitudes beyond the range
	// collapse into the edge buckets instead.
	minKey int
	maxKey int
	pos    map[int]uint64
	neg    map[int]uint64
	zero   uint64
	posInf uint64
	negInf uint64
	nan    uint64
	n      uint64
}

// DefaultSketchEpsilon is the relative accuracy used when
// NewQuantileSketch is given a non-positive epsilon: 1% relative error.
const DefaultSketchEpsilon = 0.01

// NewQuantileSketch builds a sketch with the given relative accuracy
// eps in (0, 1); eps <= 0 uses DefaultSketchEpsilon.
func NewQuantileSketch(eps float64) (*QuantileSketch, error) {
	if eps <= 0 {
		eps = DefaultSketchEpsilon
	}
	if eps >= 1 || math.IsNaN(eps) {
		return nil, fmt.Errorf("streamstats: sketch epsilon %g outside (0, 1)", eps)
	}
	gamma := (1 + eps) / (1 - eps)
	lnGamma := math.Log(gamma)
	// Smallest key whose representative stays a positive normal float
	// (gamma^k >= 2^-1022), largest whose representative's 2*gamma^k
	// numerator stays finite (gamma^k <= MaxFloat64/2).
	minKey := int(math.Ceil(math.Log(0x1p-1022) / lnGamma))
	maxKey := int(math.Floor(math.Log(math.MaxFloat64/2) / lnGamma))
	return &QuantileSketch{
		eps:     eps,
		gamma:   gamma,
		lnGamma: lnGamma,
		minKey:  minKey,
		maxKey:  maxKey,
		pos:     make(map[int]uint64),
		neg:     make(map[int]uint64),
	}, nil
}

// Epsilon returns the sketch's relative accuracy.
func (s *QuantileSketch) Epsilon() float64 { return s.eps }

// N returns the number of observations absorbed, NaN included.
func (s *QuantileSketch) N() int { return int(s.n) }

// bucket returns the geometric bucket index of a positive finite value:
// the k with x in (gamma^(k-1), gamma^k], clamped to [minKey, maxKey].
func (s *QuantileSketch) bucket(x float64) int {
	k := int(math.Ceil(math.Log(x) / s.lnGamma))
	// The log division carries rounding error, so a value sitting on (or
	// within an ulp of) a bucket edge can land one bucket off; settle
	// edge cases against the actual bucket boundaries.
	if math.Pow(s.gamma, float64(k)) < x {
		k++
	} else if math.Pow(s.gamma, float64(k-1)) >= x {
		k--
	}
	if k < s.minKey {
		return s.minKey
	}
	if k > s.maxKey {
		return s.maxKey
	}
	return k
}

// value returns the representative value of a bucket: the midpoint of
// (gamma^(k-1), gamma^k], within eps relative error of everything in it.
func (s *QuantileSketch) value(k int) float64 {
	return 2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1)
}

// Add folds one observation into the sketch.
func (s *QuantileSketch) Add(x float64) {
	s.n++
	switch {
	case math.IsNaN(x):
		s.nan++
	case math.IsInf(x, 1):
		s.posInf++
	case math.IsInf(x, -1):
		s.negInf++
	case x == 0:
		s.zero++
	case x > 0:
		s.pos[s.bucket(x)]++
	default:
		s.neg[s.bucket(-x)]++
	}
}

// Merge folds another sketch into s. Both sketches must have been built
// with the same epsilon, or the accuracy guarantee would silently change.
func (s *QuantileSketch) Merge(o *QuantileSketch) error {
	if s.eps != o.eps {
		return fmt.Errorf("streamstats: merge sketches with eps %g and %g", s.eps, o.eps)
	}
	for k, c := range o.pos {
		s.pos[k] += c
	}
	for k, c := range o.neg {
		s.neg[k] += c
	}
	s.zero += o.zero
	s.posInf += o.posInf
	s.negInf += o.negInf
	s.nan += o.nan
	s.n += o.n
	return nil
}

// Quantile returns the estimated q-th quantile (0 <= q <= 1) of the
// absorbed sample. The estimate is the representative value of the bucket
// holding the order statistic of rank round(q*(n-1)), so for finite
// nonzero samples it is within eps relative error of a true sample value
// at that rank. NaN observations make every quantile undefined
// (ErrNaNSketch), mirroring stats.Quantile's NaN rejection.
func (s *QuantileSketch) Quantile(q float64) (float64, error) {
	if s.n == 0 {
		return math.NaN(), ErrEmptySketch
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN(), fmt.Errorf("streamstats: quantile %g outside [0, 1]", q)
	}
	if s.nan > 0 {
		return math.NaN(), ErrNaNSketch
	}
	// Target rank in ascending order, matching the anchor rank of the
	// type-7 quantile definition used by stats.Quantile.
	rank := uint64(math.Round(q * float64(s.n-1)))
	var seen uint64

	// Ascending value order: -Inf, negatives (large magnitude first),
	// zero, positives (small magnitude first), +Inf.
	if s.negInf > 0 {
		seen += s.negInf
		if rank < seen {
			return math.Inf(-1), nil
		}
	}
	for _, k := range s.sortedKeys(s.neg, true) {
		seen += s.neg[k]
		if rank < seen {
			return -s.value(k), nil
		}
	}
	if s.zero > 0 {
		seen += s.zero
		if rank < seen {
			return 0, nil
		}
	}
	for _, k := range s.sortedKeys(s.pos, false) {
		seen += s.pos[k]
		if rank < seen {
			return s.value(k), nil
		}
	}
	return math.Inf(1), nil
}

// Median returns the estimated 0.5 quantile.
func (s *QuantileSketch) Median() (float64, error) { return s.Quantile(0.5) }

// sortedKeys returns the bucket indices of one sign's map, descending for
// the negative half (so iteration is in ascending value order).
func (s *QuantileSketch) sortedKeys(m map[int]uint64, descending bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if descending {
		for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
			keys[i], keys[j] = keys[j], keys[i]
		}
	}
	return keys
}
