package streamstats

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// bitsEqual compares floats by bit pattern, so NaN == NaN and -0 != 0 —
// the right notion of identity for snapshot round trips.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func sliceBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bitsEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// streams that exercise every counter path: plain positives, zeros,
// negatives, ±Inf, NaN, heavy repetition, single values.
func snapshotStreams() map[string][]float64 {
	rng := rand.New(rand.NewSource(7))
	long := make([]float64, 500)
	for i := range long {
		long[i] = math.Exp(rng.NormFloat64())
	}
	return map[string][]float64{
		"empty":     {},
		"single":    {3.25},
		"positives": {1, 2.5, 3.75, 100, 1e-9, 7e12},
		"mixed":     {-4, 0, 0, 5, -0.125, 2},
		"inf":       {1, math.Inf(1), 2, math.Inf(-1), 3},
		"nan":       {1, math.NaN(), 2},
		"long":      long,
	}
}

func fillAccumulator(t *testing.T, xs []float64, capacity int) *Accumulator {
	t.Helper()
	acc, err := NewAccumulator(Config{ReservoirSize: capacity, Seed: 42})
	if err != nil {
		t.Fatalf("NewAccumulator: %v", err)
	}
	for _, x := range xs {
		acc.Add(x)
	}
	return acc
}

// assertAccumulatorsIdentical checks every observable — summary fields by
// bit pattern, a grid of quantiles, the subsample, counts — match.
func assertAccumulatorsIdentical(t *testing.T, want, got *Accumulator) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("N: want %d, got %d", want.N(), got.N())
	}
	if !sliceBitsEqual(want.Sample(), got.Sample()) {
		t.Fatalf("Sample: want %v, got %v", want.Sample(), got.Sample())
	}
	if want.N() > 0 {
		ws, errW := want.Summary()
		gs, errG := got.Summary()
		if (errW == nil) != (errG == nil) {
			t.Fatalf("Summary errors diverge: %v vs %v", errW, errG)
		}
		if errW == nil {
			for _, f := range []struct {
				name string
				w, g float64
			}{
				{"Mean", ws.Mean, gs.Mean},
				{"Median", ws.Median, gs.Median},
				{"StdDev", ws.StdDev, gs.StdDev},
				{"Variance", ws.Variance, gs.Variance},
				{"C2", ws.C2, gs.C2},
				{"Min", ws.Min, gs.Min},
				{"Max", ws.Max, gs.Max},
			} {
				if !bitsEqual(f.w, f.g) {
					t.Fatalf("Summary.%s: want %v, got %v", f.name, f.w, f.g)
				}
			}
		}
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
			wq, errW := want.Quantile(q)
			gq, errG := got.Quantile(q)
			if (errW == nil) != (errG == nil) || (errW == nil && !bitsEqual(wq, gq)) {
				t.Fatalf("Quantile(%g): want (%v, %v), got (%v, %v)", q, wq, errW, gq, errG)
			}
		}
	}
}

func restored(t *testing.T, acc *Accumulator) *Accumulator {
	t.Helper()
	blob, err := acc.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	out := &Accumulator{}
	if err := out.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	return out
}

func TestAccumulatorSnapshotRoundTrip(t *testing.T) {
	for name, xs := range snapshotStreams() {
		t.Run(name, func(t *testing.T) {
			acc := fillAccumulator(t, xs, 16)
			assertAccumulatorsIdentical(t, acc, restored(t, acc))
		})
	}
}

// The stronger contract: after restore, the accumulator behaves
// identically under further Add and Merge — reservoir RNG state included.
// Capacity 8 over hundreds of adds forces replacement draws, so any
// generator-state drift changes the subsample.
func TestAccumulatorSnapshotFutureBehavior(t *testing.T) {
	for name, xs := range snapshotStreams() {
		t.Run(name, func(t *testing.T) {
			orig := fillAccumulator(t, xs, 8)
			rest := restored(t, orig)
			clone := orig.Clone()

			rng := rand.New(rand.NewSource(99))
			future := make([]float64, 300)
			for i := range future {
				future[i] = rng.ExpFloat64() * 50
			}
			other := fillAccumulator(t, future[:150], 8)
			otherCopy := fillAccumulator(t, future[:150], 8)
			otherCopy2 := fillAccumulator(t, future[:150], 8)

			for _, pair := range []struct {
				label string
				acc   *Accumulator
				merge *Accumulator
			}{
				{"restored", rest, otherCopy},
				{"cloned", clone, otherCopy2},
			} {
				for _, x := range future {
					pair.acc.Add(x)
				}
				if err := pair.acc.Merge(pair.merge); err != nil {
					t.Fatalf("%s merge: %v", pair.label, err)
				}
			}
			for _, x := range future {
				orig.Add(x)
			}
			if err := orig.Merge(other); err != nil {
				t.Fatalf("orig merge: %v", err)
			}

			assertAccumulatorsIdentical(t, orig, rest)
			assertAccumulatorsIdentical(t, orig, clone)
		})
	}
}

// Clone must be independent: mutating the clone leaves the original
// untouched (sketch maps and reservoir sample are deep-copied).
func TestAccumulatorCloneIndependent(t *testing.T) {
	orig := fillAccumulator(t, []float64{1, 2, 3, 4, 5}, 4)
	before, err := orig.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	clone := orig.Clone()
	for i := 0; i < 100; i++ {
		clone.Add(float64(i))
	}
	after, err := orig.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("mutating a clone changed the original accumulator")
	}
}

// Equal states must serialize to equal bytes (sorted bucket order), the
// property the service's bit-identical snapshot comparisons rely on.
func TestSnapshotDeterministicBytes(t *testing.T) {
	a := fillAccumulator(t, snapshotStreams()["long"], 16)
	b := restored(t, a)
	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if !reflect.DeepEqual(ab, bb) {
		t.Fatal("restore → marshal is not byte-identical")
	}
	ab2, err := a.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	if !reflect.DeepEqual(ab, ab2) {
		t.Fatal("marshal is not deterministic")
	}
}

func TestMomentsSnapshotRoundTrip(t *testing.T) {
	for name, xs := range snapshotStreams() {
		t.Run(name, func(t *testing.T) {
			var m Moments
			for _, x := range xs {
				m.Add(x)
			}
			blob, err := m.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary: %v", err)
			}
			var got Moments
			if err := got.UnmarshalBinary(blob); err != nil {
				t.Fatalf("UnmarshalBinary: %v", err)
			}
			// Compare via re-marshal: byte equality is bit equality, and
			// NaN fields defeat struct ==.
			reblob, err := got.MarshalBinary()
			if err != nil {
				t.Fatalf("re-MarshalBinary: %v", err)
			}
			if !reflect.DeepEqual(blob, reblob) {
				t.Fatalf("moments differ: want %+v, got %+v", m, got)
			}
		})
	}
}

func TestReservoirSnapshotRNGState(t *testing.T) {
	r := NewReservoir(4, 1234)
	for i := 0; i < 1000; i++ {
		r.Add(float64(i))
	}
	blob, err := r.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	got := &Reservoir{}
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	// Same further stream must produce the same replacement decisions.
	for i := 0; i < 1000; i++ {
		r.Add(float64(-i))
		got.Add(float64(-i))
	}
	if !reflect.DeepEqual(r.Sample(), got.Sample()) {
		t.Fatalf("post-restore samples diverge: %v vs %v", r.Sample(), got.Sample())
	}
	if r.Seen() != got.Seen() {
		t.Fatalf("seen: %d vs %d", r.Seen(), got.Seen())
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	acc := fillAccumulator(t, []float64{1, 2, 3}, 4)
	blob, err := acc.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"truncated": blob[:len(blob)/2],
		"wrongKind": append([]byte{'Z'}, blob[1:]...),
		"badVer":    append([]byte{blob[0], 99}, blob[2:]...),
		"trailing":  append(append([]byte(nil), blob...), 0xAB),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			got := &Accumulator{}
			if err := got.UnmarshalBinary(data); !errors.Is(err, ErrSnapshot) {
				t.Fatalf("want ErrSnapshot, got %v", err)
			}
		})
	}
}
