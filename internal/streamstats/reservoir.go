package streamstats

import (
	"fmt"
	"math/rand"
)

// Reservoir keeps a uniform random subsample of fixed capacity from a
// stream of unknown length (Vitter's Algorithm R), driven by a seeded
// generator so the subsample is deterministic for a given (seed, stream)
// pair. It bounds the input to the existing MLE fitters when the full
// sample cannot be held. Construct with NewReservoir.
type Reservoir struct {
	capacity int
	seed     int64
	seen     uint64
	sample   []float64
	rng      *rand.Rand
	src      *countingSource
}

// countingSource wraps the seeded math/rand source with a draw counter.
// The generator's state is a pure function of (seed, draws), so snapshot,
// restore and clone can reproduce it exactly by re-seeding and discarding
// the same number of draws — without changing a single emitted value
// relative to an unwrapped rand.New(rand.NewSource(seed)).
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	// rand.NewSource's concrete type implements Source64; the assertion
	// guards the fast-forward contract (one state step per call).
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// fastForward discards draws until the counter reaches n.
func (c *countingSource) fastForward(n uint64) {
	for c.n < n {
		c.Uint64()
	}
}

// DefaultReservoirSize is the capacity used when NewReservoir is given a
// non-positive one. 10k observations keep every fitter in the repository
// well past its asymptotic regime while bounding memory.
const DefaultReservoirSize = 10000

// NewReservoir builds a seeded reservoir; capacity <= 0 uses
// DefaultReservoirSize.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		capacity = DefaultReservoirSize
	}
	// The sample grows on demand rather than preallocating capacity:
	// analyses shard a stream into many reservoirs, most of which see far
	// fewer observations than the cap.
	src := newCountingSource(seed)
	return &Reservoir{
		capacity: capacity,
		seed:     seed,
		rng:      rand.New(src),
		src:      src,
	}
}

// Clone returns an independent deep copy: same subsample, and the same
// future Add/Merge behavior, because the generator state is reproduced by
// fast-forwarding a fresh seeded source. Cost is O(len(sample) + draws).
func (r *Reservoir) Clone() *Reservoir {
	c := r.frozen()
	c.src.fastForward(r.src.n)
	return c
}

// frozen is Clone without the generator fast-forward: an O(sample) copy
// whose subsample is identical but whose future replacement draws are
// not. Backs Accumulator.Freeze.
func (r *Reservoir) frozen() *Reservoir {
	c := NewReservoir(r.capacity, r.seed)
	c.seen = r.seen
	c.sample = append([]float64(nil), r.sample...)
	return c
}

// Add folds one observation into the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.sample) < r.capacity {
		r.sample = append(r.sample, x)
		return
	}
	if j := r.rng.Int63n(int64(r.seen)); j < int64(r.capacity) {
		r.sample[j] = x
	}
}

// Merge folds another reservoir into r, keeping the combined sample
// approximately uniform over both streams: when the union exceeds
// capacity, each slot is drawn from r or o with probability proportional
// to their stream lengths. Capacities must match.
func (r *Reservoir) Merge(o *Reservoir) error {
	if r.capacity != o.capacity {
		return fmt.Errorf("streamstats: merge reservoirs with capacity %d and %d", r.capacity, o.capacity)
	}
	if o.seen == 0 {
		return nil
	}
	if uint64(len(r.sample))+uint64(len(o.sample)) <= uint64(r.capacity) {
		r.sample = append(r.sample, o.sample...)
		r.seen += o.seen
		return nil
	}
	mine, theirs := r.sample, append([]float64(nil), o.sample...)
	merged := make([]float64, 0, r.capacity)
	total := r.seen + o.seen
	wMine := r.seen
	for len(merged) < r.capacity && (len(mine) > 0 || len(theirs) > 0) {
		takeMine := len(theirs) == 0
		if !takeMine && len(mine) > 0 {
			takeMine = uint64(r.rng.Int63n(int64(total))) < wMine
		}
		if takeMine {
			i := r.rng.Intn(len(mine))
			merged = append(merged, mine[i])
			mine[i] = mine[len(mine)-1]
			mine = mine[:len(mine)-1]
		} else {
			i := r.rng.Intn(len(theirs))
			merged = append(merged, theirs[i])
			theirs[i] = theirs[len(theirs)-1]
			theirs = theirs[:len(theirs)-1]
		}
	}
	r.sample = merged
	r.seen = total
	return nil
}

// Seen returns how many observations have been offered.
func (r *Reservoir) Seen() int { return int(r.seen) }

// Sample returns a copy of the current subsample, in insertion order.
func (r *Reservoir) Sample() []float64 {
	out := make([]float64, len(r.sample))
	copy(out, r.sample)
	return out
}
