package streamstats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Versioned binary snapshot/restore for every streaming structure. The
// format is the crash-recovery contract of the analytics service: a
// restored structure is indistinguishable from the original — identical
// Quantile/Mean/Seen answers AND identical future Add/Merge behavior,
// reservoir generator state included. Each blob opens with a one-byte
// kind tag and a one-byte version so mixed-up or stale blobs fail loudly
// instead of decoding garbage.
//
// Encodings are deterministic (sketch buckets are written in sorted key
// order), so equal states produce byte-equal snapshots — the property the
// service's kill-and-restore chaos tests pin.
const (
	momentsKind     byte = 'M'
	sketchKind      byte = 'Q'
	reservoirKind   byte = 'R'
	accumulatorKind byte = 'A'

	snapshotVersion byte = 1
)

// ErrSnapshot is wrapped by every decode failure, so callers can
// distinguish a corrupt blob from other errors with errors.Is.
var ErrSnapshot = errors.New("streamstats: corrupt snapshot")

// binReader walks a snapshot blob with bounds checking.
type binReader struct {
	buf []byte
}

func (r *binReader) bytes(n int) ([]byte, error) {
	if n < 0 || len(r.buf) < n {
		return nil, fmt.Errorf("%w: truncated (%d bytes left, need %d)", ErrSnapshot, len(r.buf), n)
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b, nil
}

func (r *binReader) byte() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *binReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrSnapshot)
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrSnapshot)
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *binReader) f64() (float64, error) {
	u, err := r.u64()
	return math.Float64frombits(u), err
}

func (r *binReader) header(kind byte) error {
	k, err := r.byte()
	if err != nil {
		return err
	}
	if k != kind {
		return fmt.Errorf("%w: kind %q, want %q", ErrSnapshot, k, kind)
	}
	v, err := r.byte()
	if err != nil {
		return err
	}
	if v != snapshotVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrSnapshot, v, snapshotVersion)
	}
	return nil
}

func appendHeader(buf []byte, kind byte) []byte {
	return append(buf, kind, snapshotVersion)
}

func appendU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

func appendF64(buf []byte, v float64) []byte {
	return appendU64(buf, math.Float64bits(v))
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *Moments) MarshalBinary() ([]byte, error) {
	buf := appendHeader(make([]byte, 0, 2+8*5+1), momentsKind)
	buf = appendU64(buf, m.n)
	buf = appendF64(buf, m.mean)
	buf = appendF64(buf, m.m2)
	buf = appendF64(buf, m.min)
	buf = appendF64(buf, m.max)
	buf = appendBool(buf, m.hasNaN)
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing m.
func (m *Moments) UnmarshalBinary(data []byte) error {
	r := binReader{buf: data}
	if err := r.header(momentsKind); err != nil {
		return err
	}
	var out Moments
	var err error
	var nan byte
	if out.n, err = r.u64(); err != nil {
		return err
	}
	if out.mean, err = r.f64(); err != nil {
		return err
	}
	if out.m2, err = r.f64(); err != nil {
		return err
	}
	if out.min, err = r.f64(); err != nil {
		return err
	}
	if out.max, err = r.f64(); err != nil {
		return err
	}
	if nan, err = r.byte(); err != nil {
		return err
	}
	out.hasNaN = nan != 0
	*m = out
	return nil
}

// appendBuckets writes one sign's bucket map in sorted key order.
func appendBuckets(buf []byte, m map[int]uint64) []byte {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendVarint(buf, int64(k))
		buf = binary.AppendUvarint(buf, m[k])
	}
	return buf
}

func readBuckets(r *binReader) (map[int]uint64, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	m := make(map[int]uint64, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.varint()
		if err != nil {
			return nil, err
		}
		c, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		m[int(k)] = c
	}
	return m, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *QuantileSketch) MarshalBinary() ([]byte, error) {
	buf := appendHeader(nil, sketchKind)
	buf = appendF64(buf, s.eps)
	buf = appendU64(buf, s.zero)
	buf = appendU64(buf, s.posInf)
	buf = appendU64(buf, s.negInf)
	buf = appendU64(buf, s.nan)
	buf = appendU64(buf, s.n)
	buf = appendBuckets(buf, s.pos)
	buf = appendBuckets(buf, s.neg)
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing s.
// Gamma and its log are rederived from the stored epsilon bits, so bucket
// boundaries of future Adds are bit-identical to the snapshotted sketch's.
func (s *QuantileSketch) UnmarshalBinary(data []byte) error {
	r := binReader{buf: data}
	if err := r.header(sketchKind); err != nil {
		return err
	}
	eps, err := r.f64()
	if err != nil {
		return err
	}
	out, err := NewQuantileSketch(eps)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if out.zero, err = r.u64(); err != nil {
		return err
	}
	if out.posInf, err = r.u64(); err != nil {
		return err
	}
	if out.negInf, err = r.u64(); err != nil {
		return err
	}
	if out.nan, err = r.u64(); err != nil {
		return err
	}
	if out.n, err = r.u64(); err != nil {
		return err
	}
	if out.pos, err = readBuckets(&r); err != nil {
		return err
	}
	if out.neg, err = readBuckets(&r); err != nil {
		return err
	}
	*s = *out
	return nil
}

// Clone returns an independent deep copy of the sketch.
func (s *QuantileSketch) Clone() *QuantileSketch {
	c := *s
	c.pos = make(map[int]uint64, len(s.pos))
	for k, v := range s.pos {
		c.pos[k] = v
	}
	c.neg = make(map[int]uint64, len(s.neg))
	for k, v := range s.neg {
		c.neg[k] = v
	}
	return &c
}

// MarshalBinary implements encoding.BinaryMarshaler. The generator state
// is stored as (seed, draws): restore re-seeds and fast-forwards, which
// reproduces the exact state because the underlying source advances one
// step per draw.
func (r *Reservoir) MarshalBinary() ([]byte, error) {
	buf := appendHeader(nil, reservoirKind)
	buf = binary.AppendUvarint(buf, uint64(r.capacity))
	buf = appendU64(buf, uint64(r.seed))
	buf = appendU64(buf, r.seen)
	buf = appendU64(buf, r.src.n)
	buf = binary.AppendUvarint(buf, uint64(len(r.sample)))
	for _, x := range r.sample {
		buf = appendF64(buf, x)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing r.
func (r *Reservoir) UnmarshalBinary(data []byte) error {
	br := binReader{buf: data}
	if err := br.header(reservoirKind); err != nil {
		return err
	}
	capacity, err := br.uvarint()
	if err != nil {
		return err
	}
	if capacity == 0 || capacity > math.MaxInt32 {
		return fmt.Errorf("%w: reservoir capacity %d", ErrSnapshot, capacity)
	}
	seed, err := br.u64()
	if err != nil {
		return err
	}
	seen, err := br.u64()
	if err != nil {
		return err
	}
	draws, err := br.u64()
	if err != nil {
		return err
	}
	n, err := br.uvarint()
	if err != nil {
		return err
	}
	if n > capacity || n > seen {
		return fmt.Errorf("%w: reservoir sample %d exceeds capacity %d or seen %d", ErrSnapshot, n, capacity, seen)
	}
	out := NewReservoir(int(capacity), int64(seed))
	out.seen = seen
	out.sample = make([]float64, n)
	for i := range out.sample {
		if out.sample[i], err = br.f64(); err != nil {
			return err
		}
	}
	out.src.fastForward(draws)
	*r = *out
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler: the three
// sub-structures, each length-prefixed.
func (a *Accumulator) MarshalBinary() ([]byte, error) {
	buf := appendHeader(nil, accumulatorKind)
	for _, part := range []interface{ MarshalBinary() ([]byte, error) }{&a.moments, a.sketch, a.res} {
		b, err := part.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		buf = append(buf, b...)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing a.
func (a *Accumulator) UnmarshalBinary(data []byte) error {
	r := binReader{buf: data}
	if err := r.header(accumulatorKind); err != nil {
		return err
	}
	var out Accumulator
	out.sketch = &QuantileSketch{}
	out.res = &Reservoir{}
	for _, part := range []interface{ UnmarshalBinary([]byte) error }{&out.moments, out.sketch, out.res} {
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return err
		}
		if err := part.UnmarshalBinary(b); err != nil {
			return err
		}
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrSnapshot, len(r.buf))
	}
	*a = out
	return nil
}

// Clone returns an independent deep copy of the accumulator: identical
// summaries, quantiles and subsample, and identical future Add/Merge
// behavior. Reproducing the reservoir's generator state costs O(draws);
// use Freeze for read-only copies on a hot query path.
func (a *Accumulator) Clone() *Accumulator {
	return &Accumulator{
		moments: a.moments,
		sketch:  a.sketch.Clone(),
		res:     a.res.Clone(),
	}
}

// Freeze returns an independent read-only deep copy: identical summaries,
// quantiles and subsample, at O(sample) cost. The reservoir's generator
// state is NOT reproduced, so Add/Merge on a frozen copy diverges from
// the original's future — freeze to query, clone to keep accumulating.
// The analytics service freezes dirty shards under a short lock and fits
// the frozen copies outside it, so queries never block writers.
func (a *Accumulator) Freeze() *Accumulator {
	return &Accumulator{
		moments: a.moments,
		sketch:  a.sketch.Clone(),
		res:     a.res.frozen(),
	}
}
