package streamstats

import (
	"fmt"
	"math"

	"hpcfail/internal/stats"
)

// Accumulator is the one-pass counterpart of stats.Summarize plus a
// fitting subsample: Welford moments for mean/variance/C²/extrema, a
// quantile sketch for the median and percentiles, and a seeded reservoir
// to feed distribution fitters. Construct with NewAccumulator.
type Accumulator struct {
	moments Moments
	sketch  *QuantileSketch
	res     *Reservoir
}

// Config sizes an Accumulator. The zero value uses
// DefaultSketchEpsilon, DefaultReservoirSize and seed 0.
type Config struct {
	// SketchEpsilon is the quantile sketch's relative accuracy; <= 0 uses
	// DefaultSketchEpsilon.
	SketchEpsilon float64
	// ReservoirSize caps the fitting subsample; <= 0 uses
	// DefaultReservoirSize.
	ReservoirSize int
	// Seed drives the reservoir's replacement decisions.
	Seed int64
}

// NewAccumulator builds an accumulator for the given configuration.
func NewAccumulator(cfg Config) (*Accumulator, error) {
	sketch, err := NewQuantileSketch(cfg.SketchEpsilon)
	if err != nil {
		return nil, err
	}
	return &Accumulator{
		sketch: sketch,
		res:    NewReservoir(cfg.ReservoirSize, cfg.Seed),
	}, nil
}

// Add folds one observation into all three structures.
func (a *Accumulator) Add(x float64) {
	a.moments.Add(x)
	a.sketch.Add(x)
	a.res.Add(x)
}

// Merge folds another accumulator into a. Sketch epsilons and reservoir
// capacities must match.
func (a *Accumulator) Merge(o *Accumulator) error {
	if err := a.sketch.Merge(o.sketch); err != nil {
		return err
	}
	if err := a.res.Merge(o.res); err != nil {
		return err
	}
	a.moments.Merge(&o.moments)
	return nil
}

// N returns the observation count.
func (a *Accumulator) N() int { return a.moments.N() }

// Moments exposes the running moments.
func (a *Accumulator) Moments() *Moments { return &a.moments }

// Quantile returns the sketched q-th quantile.
func (a *Accumulator) Quantile(q float64) (float64, error) { return a.sketch.Quantile(q) }

// Sample returns the reservoir subsample for fitting.
func (a *Accumulator) Sample() []float64 { return a.res.Sample() }

// Summary assembles a stats.Summary from the streaming state: moments are
// exact (up to floating-point reassociation), the median comes from the
// sketch within its relative-accuracy guarantee. A sample that contained
// NaN yields NaN fields, mirroring stats.Summarize.
func (a *Accumulator) Summary() (stats.Summary, error) {
	if a.N() == 0 {
		return stats.Summary{}, stats.ErrEmpty
	}
	med, err := a.sketch.Median()
	if err != nil && err != ErrNaNSketch {
		return stats.Summary{}, fmt.Errorf("streamstats: summary median: %w", err)
	}
	if err == ErrNaNSketch {
		med = math.NaN()
	}
	return stats.Summary{
		N:        a.N(),
		Mean:     a.moments.Mean(),
		Median:   med,
		StdDev:   a.moments.StdDev(),
		Variance: a.moments.Variance(),
		C2:       a.moments.C2(),
		Min:      a.moments.Min(),
		Max:      a.moments.Max(),
	}, nil
}
