package streamstats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hpcfail/internal/stats"
)

// bothNaNOrClose accepts two values that are both NaN, or both finite and
// within tol relative error — the agreement contract between the streaming
// accumulators and the in-memory stats package.
func bothNaNOrClose(got, want, tol float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return math.IsNaN(got) && math.IsNaN(want)
	}
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

// TestAccumulatorAgreesWithSummarize is the streaming layer's accuracy
// contract as a property: on any sample — NaN, ±Inf and single-observation
// edges included — the one-pass Accumulator reproduces stats.Summarize's
// moments within floating-point reassociation error and its median within
// the sketch's relative-error guarantee.
func TestAccumulatorAgreesWithSummarize(t *testing.T) {
	const eps = 0.01
	f := func(seedVals []float64, extreme bool) bool {
		if len(seedVals) == 0 {
			return true
		}
		// quick generates magnitudes up to MaxFloat64, where the two-pass
		// sum overflows while Welford (correctly) does not; scale into a
		// range where both definitions are exact so the comparison tests
		// the streaming layer, not float overflow.
		raw := make([]float64, len(seedVals))
		for i, v := range seedVals {
			raw[i] = v / 1e300
		}
		if extreme {
			// Exercise the special-value paths quick never generates.
			raw = append(raw, math.NaN(), math.Inf(1), math.Inf(-1), 0)
		}
		acc, err := NewAccumulator(Config{SketchEpsilon: eps, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range raw {
			acc.Add(x)
		}
		got, err := acc.Summary()
		if err != nil {
			t.Fatalf("accumulator summary: %v", err)
		}
		want, err := stats.Summarize(raw)
		if err != nil {
			t.Fatalf("summarize: %v", err)
		}
		if got.N != want.N {
			t.Fatalf("N = %d, want %d", got.N, want.N)
		}
		for _, c := range []struct {
			name      string
			got, want float64
		}{
			{"mean", got.Mean, want.Mean},
			{"variance", got.Variance, want.Variance},
			{"stddev", got.StdDev, want.StdDev},
			{"c2", got.C2, want.C2},
		} {
			// ±Inf arithmetic must land on the same infinity or NaN.
			if math.IsInf(c.want, 0) {
				if c.got != c.want && !(math.IsNaN(c.got) && math.IsNaN(c.want)) {
					t.Fatalf("%s = %g, want %g (sample %v)", c.name, c.got, c.want, raw)
				}
				continue
			}
			if !bothNaNOrClose(c.got, c.want, 1e-6) {
				t.Fatalf("%s = %g, want %g (sample %v)", c.name, c.got, c.want, raw)
			}
		}
		if !bothNaNOrClose(got.Min, want.Min, 0) || !bothNaNOrClose(got.Max, want.Max, 0) {
			t.Fatalf("min/max = %g/%g, want %g/%g", got.Min, got.Max, want.Min, want.Max)
		}
		return checkMedian(t, got.Median, raw, eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// checkMedian verifies the sketched median against the exact order
// statistic at the sketch's anchor rank: equal for NaN/Inf/zero, within
// eps relative error for finite nonzero values.
func checkMedian(t *testing.T, got float64, raw []float64, eps float64) bool {
	t.Helper()
	if stats.ContainsNaN(raw) {
		if !math.IsNaN(got) {
			t.Fatalf("median of NaN sample = %g, want NaN", got)
		}
		return true
	}
	sorted := append([]float64(nil), raw...)
	sort.Float64s(sorted)
	want := sorted[int(math.Round(0.5*float64(len(sorted)-1)))]
	if want == 0 || math.IsInf(want, 0) {
		if got != want {
			t.Fatalf("median = %g, want exactly %g (sample %v)", got, want, raw)
		}
		return true
	}
	if math.Abs(got-want) > eps*math.Abs(want)+1e-12 {
		t.Fatalf("median = %g, want within %g%% of %g (sample %v)", got, 100*eps, want, raw)
	}
	return true
}

// TestAccumulatorSingleObservation pins the single-observation edge: all
// three structures agree with Summarize on a one-element sample.
func TestAccumulatorSingleObservation(t *testing.T) {
	acc, err := NewAccumulator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	acc.Add(42)
	got, err := acc.Summary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := stats.Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 1 || got.Mean != want.Mean || got.Variance != want.Variance ||
		got.C2 != want.C2 || got.Min != 42 || got.Max != 42 {
		t.Fatalf("single-observation summary %+v, want %+v", got, want)
	}
	if math.Abs(got.Median-42) > DefaultSketchEpsilon*42 {
		t.Fatalf("median = %g, want within eps of 42", got.Median)
	}
	if n := len(acc.Sample()); n != 1 {
		t.Fatalf("reservoir holds %d, want 1", n)
	}
	// Empty accumulator mirrors stats.ErrEmpty.
	empty, err := NewAccumulator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Summary(); err != stats.ErrEmpty {
		t.Fatalf("empty summary err = %v, want stats.ErrEmpty", err)
	}
}

// TestAccumulatorMerge checks that chunked accumulation plus Merge matches
// one-pass accumulation on the same stream.
func TestAccumulatorMerge(t *testing.T) {
	rng := lcg(13)
	whole, _ := NewAccumulator(Config{Seed: 1})
	a, _ := NewAccumulator(Config{Seed: 1})
	b, _ := NewAccumulator(Config{Seed: 2})
	for i := 0; i < 4000; i++ {
		x := math.Exp(6 * rng.float())
		whole.Add(x)
		if i < 1500 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	sw, err := whole.Summary()
	if err != nil {
		t.Fatal(err)
	}
	sm, err := a.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sm.N != sw.N {
		t.Fatalf("merged N = %d, want %d", sm.N, sw.N)
	}
	if !bothNaNOrClose(sm.Mean, sw.Mean, 1e-9) || !bothNaNOrClose(sm.Variance, sw.Variance, 1e-9) {
		t.Fatalf("merged moments %+v, sequential %+v", sm, sw)
	}
	// The sketch merge is exact, so the medians are identical.
	if sm.Median != sw.Median {
		t.Fatalf("merged median %g != sequential %g", sm.Median, sw.Median)
	}
}
