package streamstats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hpcfail/internal/stats"
)

// bothNaNOrClose accepts two values that are both NaN, or both finite and
// within tol relative error — the agreement contract between the streaming
// accumulators and the in-memory stats package.
func bothNaNOrClose(got, want, tol float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return math.IsNaN(got) && math.IsNaN(want)
	}
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

// TestSketchBucketProperty is the regression test for the unbounded
// bucket keys: any positive finite value — subnormals and near-MaxFloat
// magnitudes included — must land in a key inside the sketch's clamped
// range with a finite, positive representative, and values inside the
// normal range must round-trip within the eps relative-error guarantee.
// Pre-fix, subnormal inputs minted keys near -37000 whose representative
// underflowed to 0 (relative error 1) and huge inputs overflowed to +Inf.
func TestSketchBucketProperty(t *testing.T) {
	for _, eps := range []float64{0.001, 0.01, 0.1} {
		s, err := NewQuantileSketch(eps)
		if err != nil {
			t.Fatal(err)
		}
		check := func(x float64) {
			t.Helper()
			k := s.bucket(x)
			if k < s.minKey || k > s.maxKey {
				t.Fatalf("eps %g: bucket(%g) = %d outside clamp [%d, %d]", eps, x, k, s.minKey, s.maxKey)
			}
			rep := s.value(k)
			if math.IsInf(rep, 0) || rep <= 0 {
				t.Fatalf("eps %g: representative of bucket(%g) is %g, want finite positive", eps, x, rep)
			}
			// Inside the clamp's guaranteed range the representative must
			// stay within eps relative error (1e-9 slack for the edges).
			if k > s.minKey && k < s.maxKey {
				if rel := math.Abs(rep-x) / x; rel > eps*(1+1e-9) {
					t.Fatalf("eps %g: |value(bucket(%g)) - x|/x = %g > eps %g", eps, x, rel, eps)
				}
			}
		}
		// Deterministic sweep over the full exponent range, subnormals and
		// overflow-adjacent magnitudes included.
		for e := -1074; e <= 1023; e++ {
			x := math.Ldexp(1, e)
			check(x)
			check(x * 1.37)
		}
		// Exact bucket boundaries and their fp neighbors: the log division
		// must not push an edge value into the wrong bucket.
		for _, k := range []int{s.minKey + 1, -1000, -17, -1, 0, 1, 17, 1000, s.maxKey - 1} {
			edge := math.Pow(s.gamma, float64(k))
			for _, x := range []float64{
				edge, math.Nextafter(edge, 0), math.Nextafter(edge, math.Inf(1)),
			} {
				if x > 0 && !math.IsInf(x, 0) {
					check(x)
				}
			}
		}
		check(math.SmallestNonzeroFloat64)
		check(math.MaxFloat64)
	}
}

// TestSketchTinyValuesBoundMapGrowth pins the memory half of the bucket
// clamp: a stream sweeping the subnormal range must not mint a map key
// per magnitude, and the resulting quantiles must stay positive (the
// collapsed bucket's representative), never 0 or negative.
func TestSketchTinyValuesBoundMapGrowth(t *testing.T) {
	s, err := NewQuantileSketch(0.01)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for x := math.SmallestNonzeroFloat64; x < 0x1p-1022; x *= 2 {
		s.Add(x)
		s.Add(-x)
		n++
	}
	for k := range s.pos {
		if k < s.minKey || k > s.maxKey {
			t.Fatalf("subnormal stream minted out-of-range key %d", k)
		}
	}
	if len(s.pos) > 2 || len(s.neg) > 2 {
		t.Fatalf("subnormal stream grew %d pos / %d neg buckets, want them collapsed at the clamp edge",
			len(s.pos), len(s.neg))
	}
	q, err := s.Quantile(0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !(q > 0) || math.IsInf(q, 0) {
		t.Fatalf("quantile of positive subnormal observations = %g, want finite positive", q)
	}
	t.Logf("%d subnormal magnitudes -> %d pos buckets", n, len(s.pos))
}

// TestAccumulatorAgreesWithSummarize is the streaming layer's accuracy
// contract as a property: on any sample — NaN, ±Inf and single-observation
// edges included — the one-pass Accumulator reproduces stats.Summarize's
// moments within floating-point reassociation error and its median within
// the sketch's relative-error guarantee.
func TestAccumulatorAgreesWithSummarize(t *testing.T) {
	const eps = 0.01
	f := func(seedVals []float64, extreme bool) bool {
		if len(seedVals) == 0 {
			return true
		}
		// quick generates magnitudes up to MaxFloat64, where the two-pass
		// sum overflows while Welford (correctly) does not; scale into a
		// range where both definitions are exact so the comparison tests
		// the streaming layer, not float overflow.
		raw := make([]float64, len(seedVals))
		for i, v := range seedVals {
			raw[i] = v / 1e300
		}
		if extreme {
			// Exercise the special-value paths quick never generates.
			raw = append(raw, math.NaN(), math.Inf(1), math.Inf(-1), 0)
		}
		acc, err := NewAccumulator(Config{SketchEpsilon: eps, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range raw {
			acc.Add(x)
		}
		got, err := acc.Summary()
		if err != nil {
			t.Fatalf("accumulator summary: %v", err)
		}
		want, err := stats.Summarize(raw)
		if err != nil {
			t.Fatalf("summarize: %v", err)
		}
		if got.N != want.N {
			t.Fatalf("N = %d, want %d", got.N, want.N)
		}
		for _, c := range []struct {
			name      string
			got, want float64
		}{
			{"mean", got.Mean, want.Mean},
			{"variance", got.Variance, want.Variance},
			{"stddev", got.StdDev, want.StdDev},
			{"c2", got.C2, want.C2},
		} {
			// ±Inf arithmetic must land on the same infinity or NaN.
			if math.IsInf(c.want, 0) {
				if c.got != c.want && !(math.IsNaN(c.got) && math.IsNaN(c.want)) {
					t.Fatalf("%s = %g, want %g (sample %v)", c.name, c.got, c.want, raw)
				}
				continue
			}
			if !bothNaNOrClose(c.got, c.want, 1e-6) {
				t.Fatalf("%s = %g, want %g (sample %v)", c.name, c.got, c.want, raw)
			}
		}
		if !bothNaNOrClose(got.Min, want.Min, 0) || !bothNaNOrClose(got.Max, want.Max, 0) {
			t.Fatalf("min/max = %g/%g, want %g/%g", got.Min, got.Max, want.Min, want.Max)
		}
		return checkMedian(t, got.Median, raw, eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// checkMedian verifies the sketched median against the exact order
// statistic at the sketch's anchor rank: equal for NaN/Inf/zero, within
// eps relative error for finite nonzero values.
func checkMedian(t *testing.T, got float64, raw []float64, eps float64) bool {
	t.Helper()
	if stats.ContainsNaN(raw) {
		if !math.IsNaN(got) {
			t.Fatalf("median of NaN sample = %g, want NaN", got)
		}
		return true
	}
	sorted := append([]float64(nil), raw...)
	sort.Float64s(sorted)
	want := sorted[int(math.Round(0.5*float64(len(sorted)-1)))]
	if want == 0 || math.IsInf(want, 0) {
		if got != want {
			t.Fatalf("median = %g, want exactly %g (sample %v)", got, want, raw)
		}
		return true
	}
	if math.Abs(got-want) > eps*math.Abs(want)+1e-12 {
		t.Fatalf("median = %g, want within %g%% of %g (sample %v)", got, 100*eps, want, raw)
	}
	return true
}

// TestAccumulatorSingleObservation pins the single-observation edge: all
// three structures agree with Summarize on a one-element sample.
func TestAccumulatorSingleObservation(t *testing.T) {
	acc, err := NewAccumulator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	acc.Add(42)
	got, err := acc.Summary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := stats.Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 1 || got.Mean != want.Mean || got.Variance != want.Variance ||
		got.C2 != want.C2 || got.Min != 42 || got.Max != 42 {
		t.Fatalf("single-observation summary %+v, want %+v", got, want)
	}
	if math.Abs(got.Median-42) > DefaultSketchEpsilon*42 {
		t.Fatalf("median = %g, want within eps of 42", got.Median)
	}
	if n := len(acc.Sample()); n != 1 {
		t.Fatalf("reservoir holds %d, want 1", n)
	}
	// Empty accumulator mirrors stats.ErrEmpty.
	empty, err := NewAccumulator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Summary(); err != stats.ErrEmpty {
		t.Fatalf("empty summary err = %v, want stats.ErrEmpty", err)
	}
}

// TestAccumulatorMerge checks that chunked accumulation plus Merge matches
// one-pass accumulation on the same stream.
func TestAccumulatorMerge(t *testing.T) {
	rng := lcg(13)
	whole, _ := NewAccumulator(Config{Seed: 1})
	a, _ := NewAccumulator(Config{Seed: 1})
	b, _ := NewAccumulator(Config{Seed: 2})
	for i := 0; i < 4000; i++ {
		x := math.Exp(6 * rng.float())
		whole.Add(x)
		if i < 1500 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	sw, err := whole.Summary()
	if err != nil {
		t.Fatal(err)
	}
	sm, err := a.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sm.N != sw.N {
		t.Fatalf("merged N = %d, want %d", sm.N, sw.N)
	}
	if !bothNaNOrClose(sm.Mean, sw.Mean, 1e-9) || !bothNaNOrClose(sm.Variance, sw.Variance, 1e-9) {
		t.Fatalf("merged moments %+v, sequential %+v", sm, sw)
	}
	// The sketch merge is exact, so the medians are identical.
	if sm.Median != sw.Median {
		t.Fatalf("merged median %g != sequential %g", sm.Median, sw.Median)
	}
}
