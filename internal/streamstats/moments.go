// Package streamstats provides one-pass, bounded-memory statistics for
// out-of-core failure traces: Welford online moments, a mergeable
// relative-error quantile sketch, and seeded reservoir sampling to feed
// the existing MLE fitters from a bounded subsample. Every structure
// supports Merge, so shard- or chunk-level accumulators combine into
// exact (moments) or accuracy-preserving (sketch) aggregates without
// revisiting the data.
//
// Accuracy contract, relative to the in-memory stats package on the same
// sample:
//
//   - Moments: N, Min, Max are exact; Mean, Variance, StdDev and C2 agree
//     up to floating-point reassociation (Welford / Chan et al. updates).
//   - QuantileSketch: any quantile of a positive sample is within a
//     factor (1 ± eps) of some value between the neighboring order
//     statistics of the exact type-7 quantile rank.
//   - Reservoir: a uniform random subsample of fixed capacity, seeded and
//     deterministic, suitable for distribution fitting when the full
//     sample cannot be held.
//
// NaN observations propagate explicitly: moments and quantiles of a
// sample that contained NaN are NaN, mirroring stats.Summarize.
package streamstats

import "math"

// Moments accumulates count, mean, variance and extrema in one pass with
// O(1) memory using Welford's algorithm. The zero value is an empty
// accumulator ready for use.
type Moments struct {
	n      uint64
	mean   float64
	m2     float64
	min    float64
	max    float64
	hasNaN bool
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	if math.IsNaN(x) {
		m.hasNaN = true
	}
	m.n++
	if m.n == 1 {
		m.mean, m.min, m.max = x, x, x
		return
	}
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
	if x < m.min {
		m.min = x
	}
	if x > m.max {
		m.max = x
	}
}

// Merge folds another accumulator into m (Chan et al. pairwise update).
// The result is as if every observation of o had been Added to m.
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n := m.n + o.n
	delta := o.mean - m.mean
	m.mean += delta * float64(o.n) / float64(n)
	m.m2 += o.m2 + delta*delta*float64(m.n)*float64(o.n)/float64(n)
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.hasNaN = m.hasNaN || o.hasNaN
	m.n = n
}

// N returns the observation count.
func (m *Moments) N() int { return int(m.n) }

// Mean returns the running mean, or NaN for an empty accumulator.
func (m *Moments) Mean() float64 {
	if m.n == 0 || m.hasNaN {
		return math.NaN()
	}
	return m.mean
}

// Variance returns the unbiased sample variance; 0 for fewer than two
// observations, matching stats.Variance.
func (m *Moments) Variance() float64 {
	if m.hasNaN {
		return math.NaN()
	}
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// C2 returns the squared coefficient of variation Var/Mean². A zero mean
// leaves C2 undefined, so it returns NaN — the same contract as
// stats.Summarize.
func (m *Moments) C2() float64 {
	mean := m.Mean()
	if mean == 0 || math.IsNaN(mean) {
		return math.NaN()
	}
	return m.Variance() / (mean * mean)
}

// Min returns the smallest observation, or NaN when empty or when the
// sample contained NaN.
func (m *Moments) Min() float64 {
	if m.n == 0 || m.hasNaN {
		return math.NaN()
	}
	return m.min
}

// Max returns the largest observation, or NaN when empty or when the
// sample contained NaN.
func (m *Moments) Max() float64 {
	if m.n == 0 || m.hasNaN {
		return math.NaN()
	}
	return m.max
}
