package streamstats

import (
	"math"
	"sort"
	"testing"

	"hpcfail/internal/stats"
)

// lcg is a tiny deterministic generator for test data.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func (l *lcg) float() float64 { return float64(l.next()>>40) / float64(1<<24) }

func TestMomentsMatchSummarize(t *testing.T) {
	rng := lcg(42)
	xs := make([]float64, 5000)
	var m Moments
	for i := range xs {
		xs[i] = 1e3*rng.float() + 0.5
		m.Add(xs[i])
	}
	want, err := stats.Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != want.N {
		t.Fatalf("N = %d, want %d", m.N(), want.N)
	}
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	approx("mean", m.Mean(), want.Mean)
	approx("variance", m.Variance(), want.Variance)
	approx("stddev", m.StdDev(), want.StdDev)
	approx("c2", m.C2(), want.C2)
	if m.Min() != want.Min || m.Max() != want.Max {
		t.Errorf("min/max = %g/%g, want %g/%g", m.Min(), m.Max(), want.Min, want.Max)
	}
}

func TestMomentsMergeEqualsSequential(t *testing.T) {
	rng := lcg(7)
	var whole, a, b Moments
	for i := 0; i < 3000; i++ {
		x := rng.float()*200 - 100
		whole.Add(x)
		if i < 1100 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	for name, pair := range map[string][2]float64{
		"mean":     {a.Mean(), whole.Mean()},
		"variance": {a.Variance(), whole.Variance()},
		"min":      {a.Min(), whole.Min()},
		"max":      {a.Max(), whole.Max()},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-9*math.Max(1, math.Abs(pair[1])) {
			t.Errorf("merged %s = %g, sequential %g", name, pair[0], pair[1])
		}
	}
	// Merging into an empty accumulator copies; merging an empty one is a
	// no-op.
	var empty Moments
	empty.Merge(&whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Fatal("merge into empty accumulator lost state")
	}
	n := whole.N()
	whole.Merge(&Moments{})
	if whole.N() != n {
		t.Fatal("merging an empty accumulator changed N")
	}
}

func TestMomentsEdges(t *testing.T) {
	var m Moments
	if !math.IsNaN(m.Mean()) || m.N() != 0 || m.Variance() != 0 {
		t.Fatal("empty moments should have NaN mean, zero N and variance")
	}
	m.Add(3)
	if m.Mean() != 3 || m.Variance() != 0 || m.Min() != 3 || m.Max() != 3 || m.C2() != 0 {
		t.Fatalf("single observation: mean=%g var=%g min=%g max=%g c2=%g",
			m.Mean(), m.Variance(), m.Min(), m.Max(), m.C2())
	}
	// Zero mean leaves C2 undefined.
	var z Moments
	z.Add(-1)
	z.Add(1)
	if !math.IsNaN(z.C2()) {
		t.Fatalf("zero-mean C2 = %g, want NaN", z.C2())
	}
	// NaN propagates to every statistic.
	var n Moments
	n.Add(1)
	n.Add(math.NaN())
	for name, v := range map[string]float64{
		"mean": n.Mean(), "variance": n.Variance(), "min": n.Min(), "max": n.Max(), "c2": n.C2(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s after NaN = %g, want NaN", name, v)
		}
	}
}

func TestSketchQuantileWithinRelativeError(t *testing.T) {
	for _, eps := range []float64{0.005, 0.01, 0.05} {
		s, err := NewQuantileSketch(eps)
		if err != nil {
			t.Fatal(err)
		}
		rng := lcg(99)
		xs := make([]float64, 20000)
		for i := range xs {
			// Heavy-tailed positive data, like interarrival seconds.
			xs[i] = math.Exp(8 * rng.float())
			s.Add(xs[i])
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			got, err := s.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			rank := int(math.Round(q * float64(len(sorted)-1)))
			want := sorted[rank]
			if math.Abs(got-want) > eps*math.Abs(want)+1e-12 {
				t.Errorf("eps=%g q=%g: sketch %g vs order statistic %g (rel err %.4f)",
					eps, q, got, want, math.Abs(got-want)/want)
			}
		}
	}
}

func TestSketchSpecialValues(t *testing.T) {
	s, err := NewQuantileSketch(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Quantile(0.5); err != ErrEmptySketch {
		t.Fatalf("empty sketch: err = %v, want ErrEmptySketch", err)
	}
	for _, x := range []float64{math.Inf(-1), -5, 0, 0, 3, math.Inf(1)} {
		s.Add(x)
	}
	if q, err := s.Quantile(0); err != nil || !math.IsInf(q, -1) {
		t.Fatalf("q=0: %g, %v, want -Inf", q, err)
	}
	if q, err := s.Quantile(1); err != nil || !math.IsInf(q, 1) {
		t.Fatalf("q=1: %g, %v, want +Inf", q, err)
	}
	if q, err := s.Quantile(0.5); err != nil || q != 0 {
		t.Fatalf("median of {-Inf,-5,0,0,3,+Inf} = %g, %v, want 0", q, err)
	}
	if q, err := s.Quantile(0.2); err != nil || math.Abs(q+5) > 0.05+1e-12 {
		t.Fatalf("q=0.2 = %g, %v, want ~-5", q, err)
	}
	if _, err := s.Quantile(1.5); err == nil {
		t.Fatal("out-of-range q: want error")
	}
	s.Add(math.NaN())
	if _, err := s.Quantile(0.5); err != ErrNaNSketch {
		t.Fatalf("NaN sketch: err = %v, want ErrNaNSketch", err)
	}
	if _, err := NewQuantileSketch(1.5); err == nil {
		t.Fatal("eps >= 1: want error")
	}
	if s, err := NewQuantileSketch(0); err != nil || s.Epsilon() != DefaultSketchEpsilon {
		t.Fatalf("default eps: %v, %v", s, err)
	}
}

func TestSketchMerge(t *testing.T) {
	a, _ := NewQuantileSketch(0.01)
	b, _ := NewQuantileSketch(0.01)
	rng := lcg(5)
	xs := make([]float64, 8000)
	whole, _ := NewQuantileSketch(0.01)
	for i := range xs {
		xs[i] = 1 + 1000*rng.float()
		whole.Add(xs[i])
		if i%2 == 0 {
			a.Add(xs[i])
		} else {
			b.Add(xs[i])
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got, err1 := a.Quantile(q)
		want, err2 := whole.Quantile(q)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if got != want {
			t.Errorf("q=%g: merged %g != sequential %g", q, got, want)
		}
	}
	c, _ := NewQuantileSketch(0.05)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging mismatched epsilons: want error")
	}
}

func TestReservoir(t *testing.T) {
	// Stream shorter than capacity: the sample is the stream.
	r := NewReservoir(10, 1)
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != 5 || len(r.Sample()) != 5 {
		t.Fatalf("seen=%d len=%d", r.Seen(), len(r.Sample()))
	}
	// Longer stream: capacity bounded, deterministic under the same seed.
	fill := func(seed int64) []float64 {
		r := NewReservoir(100, seed)
		for i := 0; i < 10000; i++ {
			r.Add(float64(i))
		}
		return r.Sample()
	}
	s1, s2 := fill(3), fill(3)
	if len(s1) != 100 {
		t.Fatalf("len = %d, want 100", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same seed produced different reservoirs")
		}
	}
	// Uniformity sanity: the sample mean of indices 0..9999 should be near
	// 5000 (loose bound; Algorithm R is exactly uniform).
	var m Moments
	for _, x := range s1 {
		m.Add(x)
	}
	if m.Mean() < 3500 || m.Mean() > 6500 {
		t.Fatalf("reservoir mean %g implausible for uniform subsample", m.Mean())
	}
	if NewReservoir(0, 1).capacity != DefaultReservoirSize {
		t.Fatal("default capacity not applied")
	}
}

func TestReservoirMerge(t *testing.T) {
	// Under capacity: exact union.
	a := NewReservoir(10, 1)
	b := NewReservoir(10, 2)
	a.Add(1)
	a.Add(2)
	b.Add(3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Seen() != 3 || len(a.Sample()) != 3 {
		t.Fatalf("merged seen=%d len=%d, want 3/3", a.Seen(), len(a.Sample()))
	}
	// Over capacity: bounded, and every kept value came from an input.
	c := NewReservoir(50, 3)
	d := NewReservoir(50, 4)
	in := make(map[float64]bool)
	for i := 0; i < 500; i++ {
		x, y := float64(i), float64(1000+i)
		in[x], in[y] = true, true
		c.Add(x)
		d.Add(y)
	}
	if err := c.Merge(d); err != nil {
		t.Fatal(err)
	}
	if c.Seen() != 1000 || len(c.Sample()) != 50 {
		t.Fatalf("merged seen=%d len=%d, want 1000/50", c.Seen(), len(c.Sample()))
	}
	fromD := 0
	for _, x := range c.Sample() {
		if !in[x] {
			t.Fatalf("merged sample contains %g, not from either input", x)
		}
		if x >= 1000 {
			fromD++
		}
	}
	// Both halves should be represented (equal stream lengths).
	if fromD == 0 || fromD == 50 {
		t.Fatalf("merged sample all from one side (fromD=%d)", fromD)
	}
	e := NewReservoir(50, 5)
	if err := c.Merge(e); err != nil || c.Seen() != 1000 {
		t.Fatalf("merging an empty reservoir: err=%v seen=%d", err, c.Seen())
	}
}

func TestReservoirMergeCapacityMismatch(t *testing.T) {
	a, b := NewReservoir(10, 1), NewReservoir(20, 1)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("capacity mismatch: want error")
	}
}
