// Package resilience defines the failure-response policies the simulator
// composes: how long to wait before re-running an interrupted job
// (RetryPolicy), when to stop scheduling onto a flaky node
// (FencingPolicy), and how long a failure goes unnoticed before the
// system reacts (DetectionModel). It also defines the adversarial
// injection scenarios (Scenario) that stress those policies with the
// paper's pathologies: correlated failure bursts (Section 4, Fig. 6's
// system-20 skew), heavy-tailed repair inflation (Section 5.2) and
// cascading co-scheduled failures.
//
// The package is a leaf: policies speak in node IDs and durations so
// internal/sim can depend on it without a cycle.
package resilience

import (
	"fmt"
	"math"
	"time"

	"hpcfail/internal/randx"
)

// RetryPolicy decides whether and when an interrupted job is re-queued.
// retry is 1-based: the first re-run after the first interruption asks
// NextDelay(1, src).
type RetryPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// NextDelay returns the wait before the retry-th re-run. ok=false
	// means the job has exhausted its retry budget and is abandoned.
	NextDelay(retry int, src *randx.Source) (delay time.Duration, ok bool)
}

// allowed reports whether the retry-th attempt fits a budget of max
// retries, where max <= 0 means unlimited.
func allowed(retry, max int) bool {
	return max <= 0 || retry <= max
}

// ImmediateRetry re-queues interrupted jobs with no delay — the naive
// "resubmit at once" response.
type ImmediateRetry struct {
	// MaxRetries bounds re-runs per job; <= 0 means unlimited.
	MaxRetries int
}

var _ RetryPolicy = ImmediateRetry{}

// Name implements RetryPolicy.
func (ImmediateRetry) Name() string { return "immediate" }

// NextDelay implements RetryPolicy.
func (p ImmediateRetry) NextDelay(retry int, _ *randx.Source) (time.Duration, bool) {
	return 0, allowed(retry, p.MaxRetries)
}

// FixedBackoff waits a constant delay before every re-run.
type FixedBackoff struct {
	// Delay is the constant wait before each re-run.
	Delay time.Duration
	// MaxRetries bounds re-runs per job; <= 0 means unlimited.
	MaxRetries int
}

var _ RetryPolicy = FixedBackoff{}

// Name implements RetryPolicy.
func (FixedBackoff) Name() string { return "fixed-backoff" }

// NextDelay implements RetryPolicy.
func (p FixedBackoff) NextDelay(retry int, _ *randx.Source) (time.Duration, bool) {
	if !allowed(retry, p.MaxRetries) {
		return 0, false
	}
	return p.Delay, true
}

// ExponentialBackoff doubles (by Factor) the wait on every consecutive
// re-run, capped at Max, with optional uniform jitter to de-synchronize
// the retry herd a correlated burst creates.
type ExponentialBackoff struct {
	// Base is the delay before the first re-run.
	Base time.Duration
	// Factor multiplies the delay per retry; values <= 1 default to 2.
	Factor float64
	// Max caps the delay; <= 0 means uncapped.
	Max time.Duration
	// Jitter in [0, 1] scales each delay by a uniform factor in
	// [1-Jitter, 1]; zero disables jitter.
	Jitter float64
	// MaxRetries bounds re-runs per job; <= 0 means unlimited.
	MaxRetries int
}

var _ RetryPolicy = ExponentialBackoff{}

// Name implements RetryPolicy.
func (ExponentialBackoff) Name() string { return "exponential-backoff" }

// Validate checks the policy parameters.
func (p ExponentialBackoff) Validate() error {
	if p.Base <= 0 {
		return fmt.Errorf("resilience: exponential backoff needs positive base, got %v", p.Base)
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		return fmt.Errorf("resilience: jitter %g outside [0, 1]", p.Jitter)
	}
	return nil
}

// MaxBackoffDelay caps an uncapped (Max <= 0) exponential backoff. The
// doubling accumulates in float64, so by retry ≈ 40 (base 1s, factor 2)
// the product exceeds math.MaxInt64 nanoseconds and a naive
// time.Duration conversion overflows to a negative delay — which a
// scheduler treats as "retry immediately", the exact herd the backoff
// exists to prevent. A day is beyond any delay the simulator (sim-time
// hours) or the ingest client (real-time seconds) meaningfully waits,
// and it keeps the arithmetic far from the representable edge.
const MaxBackoffDelay = 24 * time.Hour

// NextDelay implements RetryPolicy. The delay never exceeds Max when set,
// or MaxBackoffDelay when not, and never overflows to a negative
// duration no matter how large retry grows.
func (p ExponentialBackoff) NextDelay(retry int, src *randx.Source) (time.Duration, bool) {
	if !allowed(retry, p.MaxRetries) {
		return 0, false
	}
	factor := p.Factor
	if factor <= 1 {
		factor = 2
	}
	cap := float64(MaxBackoffDelay)
	if p.Max > 0 {
		cap = float64(p.Max)
	}
	d := float64(p.Base)
	for i := 1; i < retry; i++ {
		d *= factor
		if d >= cap {
			d = cap
			break
		}
	}
	if d > cap {
		d = cap
	}
	delay := durationFromFloat(d)
	if p.Jitter > 0 && src != nil {
		delay = randx.JitterDuration(delay, p.Jitter, src)
	}
	return delay, true
}

// durationFromFloat converts a non-negative float nanosecond count to a
// Duration, saturating instead of overflowing: float64 → int64
// conversion of an out-of-range value is not defined by the language
// spec, so values at or beyond 2⁶³ are pinned to MaxInt64 explicitly.
func durationFromFloat(d float64) time.Duration {
	if d >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	if d < 0 || math.IsNaN(d) {
		return 0
	}
	return time.Duration(d)
}
