package resilience

import (
	"testing"
	"time"

	"hpcfail/internal/randx"
)

func TestImmediateRetry(t *testing.T) {
	p := ImmediateRetry{MaxRetries: 2}
	if d, ok := p.NextDelay(1, nil); !ok || d != 0 {
		t.Fatalf("retry 1: got %v, %v", d, ok)
	}
	if _, ok := p.NextDelay(2, nil); !ok {
		t.Fatal("retry 2 should be allowed")
	}
	if _, ok := p.NextDelay(3, nil); ok {
		t.Fatal("retry 3 should exhaust the budget")
	}
	unlimited := ImmediateRetry{}
	if _, ok := unlimited.NextDelay(1_000_000, nil); !ok {
		t.Fatal("unlimited retries must never exhaust")
	}
	if p.Name() != "immediate" {
		t.Fatal("name")
	}
}

func TestFixedBackoff(t *testing.T) {
	p := FixedBackoff{Delay: 30 * time.Minute, MaxRetries: 1}
	if d, ok := p.NextDelay(1, nil); !ok || d != 30*time.Minute {
		t.Fatalf("got %v, %v", d, ok)
	}
	if _, ok := p.NextDelay(2, nil); ok {
		t.Fatal("retry 2 should be refused")
	}
	if p.Name() != "fixed-backoff" {
		t.Fatal("name")
	}
}

func TestExponentialBackoffGrowsAndCaps(t *testing.T) {
	p := ExponentialBackoff{Base: time.Hour, Max: 5 * time.Hour}
	var prev time.Duration
	for retry := 1; retry <= 6; retry++ {
		d, ok := p.NextDelay(retry, nil)
		if !ok {
			t.Fatalf("retry %d refused", retry)
		}
		if d < prev {
			t.Fatalf("retry %d: delay %v shrank below %v", retry, d, prev)
		}
		if d > 5*time.Hour {
			t.Fatalf("retry %d: delay %v exceeds cap", retry, d)
		}
		prev = d
	}
	if d, _ := p.NextDelay(1, nil); d != time.Hour {
		t.Fatalf("first delay = %v, want base", d)
	}
	if d, _ := p.NextDelay(2, nil); d != 2*time.Hour {
		t.Fatalf("second delay = %v, want 2h", d)
	}
	if d, _ := p.NextDelay(10, nil); d != 5*time.Hour {
		t.Fatalf("late delay = %v, want cap", d)
	}
	if err := (ExponentialBackoff{Base: time.Hour}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ExponentialBackoff{}).Validate(); err == nil {
		t.Fatal("zero base should fail validation")
	}
	if err := (ExponentialBackoff{Base: time.Hour, Jitter: 2}).Validate(); err == nil {
		t.Fatal("jitter > 1 should fail validation")
	}
}

func TestExponentialBackoffJitterBoundsAndDeterminism(t *testing.T) {
	p := ExponentialBackoff{Base: time.Hour, Jitter: 0.5}
	src := randx.NewSource(7)
	for i := 0; i < 100; i++ {
		d, ok := p.NextDelay(1, src)
		if !ok {
			t.Fatal("refused")
		}
		if d < time.Hour/2 || d > time.Hour {
			t.Fatalf("jittered delay %v outside [30m, 1h]", d)
		}
	}
	a, _ := p.NextDelay(3, randx.NewSource(42))
	b, _ := p.NextDelay(3, randx.NewSource(42))
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
}

func TestWindowFencingLifecycle(t *testing.T) {
	w, err := NewWindowFencing(2, 10*time.Hour, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	h := func(x float64) time.Duration { return time.Duration(x * float64(time.Hour)) }

	if !w.Admit(0, 0) {
		t.Fatal("fresh node must be admitted")
	}
	w.RecordFailure(0, h(1))
	w.RecordRepair(0, h(2))
	if !w.Admit(0, h(2)) {
		t.Fatal("one failure is below the threshold")
	}
	w.RecordFailure(0, h(3))
	if !w.Fenced(0) {
		t.Fatal("two failures in the window must fence")
	}
	if w.Admit(0, h(3)) {
		t.Fatal("fenced node admitted while down")
	}
	w.RecordRepair(0, h(5))
	if w.Admit(0, h(6)) {
		t.Fatal("admitted during probation")
	}
	// Probation ends at 5h + 4h = 9h.
	if !w.Admit(0, h(9)) {
		t.Fatal("must be re-admitted after probation")
	}
	if w.Fenced(0) {
		t.Fatal("re-admission must clear the fence")
	}
	// Re-admission wipes history: a single new failure must not re-fence.
	w.RecordFailure(0, h(9.5))
	w.RecordRepair(0, h(9.6))
	if !w.Admit(0, h(9.6)) {
		t.Fatal("single failure after re-admission must not fence")
	}
	// The node sat fenced-but-up during the whole 4h probation.
	if got := w.FencedNodeHours(h(20)); got < 3.99 || got > 4.01 {
		t.Fatalf("fenced hours = %g, want 4", got)
	}
}

func TestWindowFencingSlidingWindow(t *testing.T) {
	w, err := NewWindowFencing(2, 5*time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	w.RecordFailure(3, 0)
	// 6h later the first failure has left the window.
	w.RecordFailure(3, 6*time.Hour)
	if w.Fenced(3) {
		t.Fatal("failures outside the window must not count")
	}
	if got := w.FencedNodeHours(10 * time.Hour); got != 0 {
		t.Fatalf("fenced hours = %g, want 0", got)
	}
}

func TestWindowFencingValidation(t *testing.T) {
	if _, err := NewWindowFencing(0, time.Hour, 0); err == nil {
		t.Fatal("threshold 0")
	}
	if _, err := NewWindowFencing(1, 0, 0); err == nil {
		t.Fatal("zero window")
	}
	if _, err := NewWindowFencing(1, time.Hour, -time.Hour); err == nil {
		t.Fatal("negative probation")
	}
}

func TestNoFencingAndNames(t *testing.T) {
	var p FencingPolicy = NoFencing{}
	p.RecordFailure(1, 0)
	p.RecordRepair(1, 0)
	if !p.Admit(1, 0) || p.FencedNodeHours(time.Hour) != 0 {
		t.Fatal("NoFencing must be a no-op")
	}
	if p.Name() != "no-fencing" {
		t.Fatal("name")
	}
	w, _ := NewWindowFencing(1, time.Hour, 0)
	if w.Name() != "window-fencing" {
		t.Fatal("name")
	}
}

func TestDetectionModels(t *testing.T) {
	src := randx.NewSource(1)
	if (InstantDetection{}).Latency(src) != 0 {
		t.Fatal("instant detection must be zero")
	}
	if d := (FixedDetection{Delay: time.Minute}).Latency(src); d != time.Minute {
		t.Fatalf("fixed latency = %v", d)
	}
	if d := (FixedDetection{Delay: -time.Minute}).Latency(src); d != 0 {
		t.Fatalf("negative fixed latency must clamp, got %v", d)
	}
	u := UniformDetection{Min: time.Minute, Max: 10 * time.Minute}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		d := u.Latency(src)
		if d < time.Minute || d > 10*time.Minute {
			t.Fatalf("uniform latency %v outside range", d)
		}
	}
	if err := (UniformDetection{Min: -1}).Validate(); err == nil {
		t.Fatal("negative min must fail")
	}
	if err := (UniformDetection{Min: time.Hour, Max: time.Minute}).Validate(); err == nil {
		t.Fatal("max < min must fail")
	}
	for _, m := range []DetectionModel{InstantDetection{}, FixedDetection{}, UniformDetection{}} {
		if m.Name() == "" {
			t.Fatal("empty model name")
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	ok := Scenario{
		Bursts:     []Burst{{At: time.Hour, FirstNode: 0, Span: 8, FailProb: 0.9, RepairHours: 12}},
		Inflations: []RepairInflation{{From: 0, Until: time.Hour, Factor: 3}},
		Cascade:    &Cascade{Prob: 0.3, Lag: time.Second, RepairHours: 2},
	}
	if err := ok.Validate(16); err != nil {
		t.Fatal(err)
	}
	if ok.Empty() {
		t.Fatal("scenario is not empty")
	}
	if !(Scenario{}).Empty() {
		t.Fatal("zero scenario is empty")
	}
	bad := []Scenario{
		{Bursts: []Burst{{At: -1, Span: 1, FailProb: 0.5, RepairHours: 1}}},
		{Bursts: []Burst{{FirstNode: 20, Span: 1, FailProb: 0.5, RepairHours: 1}}},
		{Bursts: []Burst{{Span: 0, FailProb: 0.5, RepairHours: 1}}},
		{Bursts: []Burst{{Span: 1, FailProb: 1.5, RepairHours: 1}}},
		{Bursts: []Burst{{Span: 1, FailProb: 0.5}}},
		{Inflations: []RepairInflation{{From: 2, Until: 1, Factor: 2}}},
		{Inflations: []RepairInflation{{From: 0, Until: 1, Factor: 0}}},
		{Cascade: &Cascade{Prob: 0, RepairHours: 1}},
		{Cascade: &Cascade{Prob: 0.5, Lag: -1, RepairHours: 1}},
	}
	for i, sc := range bad {
		if err := sc.Validate(16); err == nil {
			t.Fatalf("bad scenario %d passed validation", i)
		}
	}
	if err := (Scenario{}).Validate(0); err == nil {
		t.Fatal("empty cluster must fail")
	}
}

func TestScenarioRepairScale(t *testing.T) {
	sc := Scenario{Inflations: []RepairInflation{
		{From: 0, Until: 10 * time.Hour, Factor: 2},
		{From: 5 * time.Hour, Until: 15 * time.Hour, Factor: 3},
	}}
	if f := sc.RepairScale(time.Hour); f != 2 {
		t.Fatalf("scale = %g, want 2", f)
	}
	if f := sc.RepairScale(7 * time.Hour); f != 6 {
		t.Fatalf("overlapping scale = %g, want 6", f)
	}
	if f := sc.RepairScale(20 * time.Hour); f != 1 {
		t.Fatalf("outside scale = %g, want 1", f)
	}
}
