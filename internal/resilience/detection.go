package resilience

import (
	"fmt"
	"time"

	"hpcfail/internal/randx"
)

// DetectionModel draws the lag between a node's true failure and the
// moment the system observes it. During the lag a job keeps "running" on
// the dead node, so the lag is pure lost work on top of the rollback —
// the gap between failure occurrence and the remedy-database record the
// paper's Section 2.3 measurement methodology acknowledges.
type DetectionModel interface {
	// Name identifies the model in reports.
	Name() string
	// Latency draws one detection lag. Implementations must return a
	// non-negative duration.
	Latency(src *randx.Source) time.Duration
}

// InstantDetection observes failures immediately — the idealized
// baseline the original simulator assumed.
type InstantDetection struct{}

var _ DetectionModel = InstantDetection{}

// Name implements DetectionModel.
func (InstantDetection) Name() string { return "instant" }

// Latency implements DetectionModel.
func (InstantDetection) Latency(*randx.Source) time.Duration { return 0 }

// FixedDetection observes every failure after a constant lag, e.g. a
// heartbeat timeout.
type FixedDetection struct {
	// Delay is the constant detection lag.
	Delay time.Duration
}

var _ DetectionModel = FixedDetection{}

// Name implements DetectionModel.
func (FixedDetection) Name() string { return "fixed" }

// Latency implements DetectionModel.
func (d FixedDetection) Latency(*randx.Source) time.Duration {
	if d.Delay < 0 {
		return 0
	}
	return d.Delay
}

// UniformDetection draws the lag uniformly from [Min, Max] — a simple
// model of a polling monitor with phase uncertainty.
type UniformDetection struct {
	Min, Max time.Duration
}

var _ DetectionModel = UniformDetection{}

// Name implements DetectionModel.
func (UniformDetection) Name() string { return "uniform" }

// Validate checks the model parameters.
func (d UniformDetection) Validate() error {
	if d.Min < 0 || d.Max < d.Min {
		return fmt.Errorf("resilience: uniform detection range [%v, %v]", d.Min, d.Max)
	}
	return nil
}

// Latency implements DetectionModel.
func (d UniformDetection) Latency(src *randx.Source) time.Duration {
	if d.Max <= d.Min {
		return d.Min
	}
	return d.Min + time.Duration(src.Float64()*float64(d.Max-d.Min))
}
