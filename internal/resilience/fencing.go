package resilience

import (
	"fmt"
	"sort"
	"time"
)

// FencingPolicy decides which nodes are admissible for scheduling. The
// cluster reports every observed failure and completed repair; Admit is
// consulted each time the scheduler gathers candidates. Implementations
// are stateful and belong to exactly one cluster.
type FencingPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// RecordFailure notes an observed failure of node id at time at.
	RecordFailure(id int, at time.Duration)
	// RecordRepair notes that node id completed repair at time at.
	RecordRepair(id int, at time.Duration)
	// Admit reports whether node id may receive work at time now.
	Admit(id int, now time.Duration) bool
	// FencedNodeHours returns cumulative hours nodes spent up but
	// fenced — capacity the policy sacrificed for stability.
	FencedNodeHours(now time.Duration) float64
}

// NoFencing admits every node unconditionally.
type NoFencing struct{}

var _ FencingPolicy = NoFencing{}

// Name implements FencingPolicy.
func (NoFencing) Name() string { return "no-fencing" }

// RecordFailure implements FencingPolicy.
func (NoFencing) RecordFailure(int, time.Duration) {}

// RecordRepair implements FencingPolicy.
func (NoFencing) RecordRepair(int, time.Duration) {}

// Admit implements FencingPolicy.
func (NoFencing) Admit(int, time.Duration) bool { return true }

// FencedNodeHours implements FencingPolicy.
func (NoFencing) FencedNodeHours(time.Duration) float64 { return 0 }

// nodeFence is WindowFencing's per-node state.
type nodeFence struct {
	failures []time.Duration // observed failure times inside the window
	fenced   bool
	// repaired/probationEnd are valid while the node is fenced and its
	// repair has completed: the node is up but withheld from scheduling
	// until probationEnd.
	repaired     bool
	upSince      time.Duration
	probationEnd time.Duration
	fencedHours  float64 // completed up-but-fenced time, in hours
}

// WindowFencing blacklists a node once it accumulates Threshold observed
// failures inside a sliding Window, then re-admits it on probation: the
// node must survive Probation past its latest repair before it is
// scheduled again, at which point its failure history is wiped. This is
// the classic "K strikes" response to the paper's finding that failures
// are temporally and spatially correlated (Section 4) — a node that just
// failed repeatedly is a bad bet for the next job.
type WindowFencing struct {
	threshold int
	window    time.Duration
	probation time.Duration
	nodes     map[int]*nodeFence
}

var _ FencingPolicy = (*WindowFencing)(nil)

// NewWindowFencing builds a WindowFencing policy fencing nodes after
// threshold failures within window, re-admitting them probation after
// their latest repair.
func NewWindowFencing(threshold int, window, probation time.Duration) (*WindowFencing, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("resilience: fencing threshold %d < 1", threshold)
	}
	if window <= 0 {
		return nil, fmt.Errorf("resilience: non-positive fencing window %v", window)
	}
	if probation < 0 {
		return nil, fmt.Errorf("resilience: negative probation %v", probation)
	}
	return &WindowFencing{
		threshold: threshold,
		window:    window,
		probation: probation,
		nodes:     make(map[int]*nodeFence),
	}, nil
}

// Name implements FencingPolicy.
func (w *WindowFencing) Name() string { return "window-fencing" }

func (w *WindowFencing) state(id int) *nodeFence {
	nf := w.nodes[id]
	if nf == nil {
		nf = &nodeFence{}
		w.nodes[id] = nf
	}
	return nf
}

// RecordFailure implements FencingPolicy.
func (w *WindowFencing) RecordFailure(id int, at time.Duration) {
	nf := w.state(id)
	if nf.fenced && nf.repaired {
		// The node was up on probation and failed again: close the
		// up-but-fenced interval and restart probation at next repair.
		// Capacity past probationEnd was only withheld lazily (no Admit
		// call happened to ask for it), so it does not count as fenced.
		end := at
		if nf.probationEnd < end {
			end = nf.probationEnd
		}
		if end > nf.upSince {
			nf.fencedHours += (end - nf.upSince).Hours()
		}
		nf.repaired = false
	}
	nf.failures = append(nf.failures, at)
	cutoff := at - w.window
	keep := nf.failures[:0]
	for _, f := range nf.failures {
		if f > cutoff {
			keep = append(keep, f)
		}
	}
	nf.failures = keep
	if len(nf.failures) >= w.threshold {
		nf.fenced = true
	}
}

// RecordRepair implements FencingPolicy.
func (w *WindowFencing) RecordRepair(id int, at time.Duration) {
	nf := w.state(id)
	if !nf.fenced {
		return
	}
	nf.repaired = true
	nf.upSince = at
	nf.probationEnd = at + w.probation
}

// Admit implements FencingPolicy.
func (w *WindowFencing) Admit(id int, now time.Duration) bool {
	nf := w.nodes[id]
	if nf == nil || !nf.fenced {
		return true
	}
	if !nf.repaired || now < nf.probationEnd {
		return false
	}
	// Probation served: re-admit with a clean record.
	nf.fencedHours += (nf.probationEnd - nf.upSince).Hours()
	*nf = nodeFence{fencedHours: nf.fencedHours}
	return true
}

// Fenced reports whether node id is currently fenced.
func (w *WindowFencing) Fenced(id int) bool {
	nf := w.nodes[id]
	return nf != nil && nf.fenced
}

// FencedNodeHours implements FencingPolicy.
func (w *WindowFencing) FencedNodeHours(now time.Duration) float64 {
	ids := make([]int, 0, len(w.nodes))
	for id := range w.nodes {
		ids = append(ids, id)
	}
	// Summed in ID order so the float result is reproducible.
	sort.Ints(ids)
	var total float64
	for _, id := range ids {
		nf := w.nodes[id]
		total += nf.fencedHours
		if nf.fenced && nf.repaired {
			end := now
			if nf.probationEnd < end {
				end = nf.probationEnd
			}
			if end > nf.upSince {
				total += (end - nf.upSince).Hours()
			}
		}
	}
	return total
}
