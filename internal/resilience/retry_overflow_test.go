package resilience

import (
	"testing"
	"time"

	"hpcfail/internal/randx"
)

// Regression: before the clamp, an uncapped exponential backoff
// overflowed float64 → time.Duration conversion at high attempt counts
// (base 1s doubles past math.MaxInt64 ns around retry 40), producing a
// negative delay — i.e. "retry immediately", the herd the backoff is
// supposed to break up.
func TestExponentialBackoffHighRetryNeverNegative(t *testing.T) {
	policies := []ExponentialBackoff{
		{Base: time.Second},                          // uncapped, factor 2
		{Base: time.Second, Factor: 10},              // faster growth
		{Base: time.Hour},                            // big base, uncapped
		{Base: time.Nanosecond, Factor: 1e6},         // extreme factor
		{Base: time.Second, Max: 30 * time.Second},   // explicit cap
		{Base: time.Second, Jitter: 0.9},             // jitter on a clamped delay
		{Base: time.Hour, Max: 400 * 24 * time.Hour}, // cap beyond the default clamp
	}
	src := randx.NewSource(11)
	for pi, p := range policies {
		var prev time.Duration
		for _, retry := range []int{1, 2, 10, 39, 40, 41, 63, 64, 100, 1000, 1 << 20} {
			d, ok := p.NextDelay(retry, src)
			if !ok {
				t.Fatalf("policy %d retry %d refused", pi, retry)
			}
			if d < 0 {
				t.Fatalf("policy %d retry %d: negative delay %v", pi, retry, d)
			}
			if p.Jitter == 0 && d < prev {
				t.Fatalf("policy %d retry %d: delay %v shrank below %v", pi, retry, d, prev)
			}
			cap := MaxBackoffDelay
			if p.Max > 0 {
				cap = p.Max
			}
			if d > cap {
				t.Fatalf("policy %d retry %d: delay %v exceeds cap %v", pi, retry, d, cap)
			}
			if p.Jitter == 0 {
				prev = d
			}
		}
	}
}

// The clamp must not disturb the pre-saturation schedule.
func TestExponentialBackoffClampPreservesEarlyDelays(t *testing.T) {
	p := ExponentialBackoff{Base: time.Second}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second}
	for i, w := range want {
		if d, _ := p.NextDelay(i+1, nil); d != w {
			t.Fatalf("retry %d: delay %v, want %v", i+1, d, w)
		}
	}
	// An uncapped policy saturates exactly at the exported clamp.
	if d, _ := p.NextDelay(1<<10, nil); d != MaxBackoffDelay {
		t.Fatalf("saturated delay %v, want %v", d, MaxBackoffDelay)
	}
}
