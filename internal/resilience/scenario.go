package resilience

import (
	"fmt"
	"time"
)

// Burst scripts one correlated failure burst: every node in the
// contiguous ID range [FirstNode, FirstNode+Span) fails independently
// with probability FailProb, at a moment drawn uniformly from
// [At, At+Spread]. This reproduces the spatially-clustered simultaneous
// failures the paper observes on system 20 (Fig. 6): bursts hit
// neighboring nodes, not uniform samples of the machine.
type Burst struct {
	// At is when the burst strikes (simulation time).
	At time.Duration
	// FirstNode and Span bound the contiguous victim range.
	FirstNode, Span int
	// FailProb is each in-range node's chance of being struck.
	FailProb float64
	// RepairHours is the repair duration for struck nodes.
	RepairHours float64
	// Spread staggers the strikes over [At, At+Spread]; zero makes the
	// burst simultaneous.
	Spread time.Duration
}

// Validate checks the burst against a cluster of the given size.
func (b Burst) Validate(clusterSize int) error {
	if b.At < 0 || b.Spread < 0 {
		return fmt.Errorf("resilience: burst at %v spread %v: negative time", b.At, b.Spread)
	}
	if b.FirstNode < 0 || b.Span <= 0 || b.FirstNode >= clusterSize {
		return fmt.Errorf("resilience: burst range [%d, %d) outside cluster of %d nodes",
			b.FirstNode, b.FirstNode+b.Span, clusterSize)
	}
	if b.FailProb <= 0 || b.FailProb > 1 {
		return fmt.Errorf("resilience: burst fail probability %g outside (0, 1]", b.FailProb)
	}
	if b.RepairHours <= 0 {
		return fmt.Errorf("resilience: burst repair %g hours must be positive", b.RepairHours)
	}
	return nil
}

// RepairInflation multiplies every repair duration that begins inside
// [From, Until) by Factor — modeling the heavy upper tail of repair
// times (Section 5.2's lognormal) or a staffing outage at the repair
// depot.
type RepairInflation struct {
	From, Until time.Duration
	Factor      float64
}

// Validate checks the inflation window.
func (r RepairInflation) Validate() error {
	if r.From < 0 || r.Until <= r.From {
		return fmt.Errorf("resilience: inflation window [%v, %v)", r.From, r.Until)
	}
	if r.Factor <= 0 {
		return fmt.Errorf("resilience: inflation factor %g must be positive", r.Factor)
	}
	return nil
}

// Cascade makes every observed failure spread to the failed node's
// co-scheduled peers: each still-up node sharing a job with the victim
// fails with probability Prob after Lag. This models failures that
// propagate through shared software state — the correlated co-located
// failures behind the paper's burst statistics.
type Cascade struct {
	// Prob is the per-peer propagation probability.
	Prob float64
	// Lag is the propagation delay.
	Lag time.Duration
	// RepairHours is the repair duration of cascade victims.
	RepairHours float64
}

// Validate checks the cascade parameters.
func (c Cascade) Validate() error {
	if c.Prob <= 0 || c.Prob > 1 {
		return fmt.Errorf("resilience: cascade probability %g outside (0, 1]", c.Prob)
	}
	if c.Lag < 0 {
		return fmt.Errorf("resilience: negative cascade lag %v", c.Lag)
	}
	if c.RepairHours <= 0 {
		return fmt.Errorf("resilience: cascade repair %g hours must be positive", c.RepairHours)
	}
	return nil
}

// Scenario bundles the adversarial injections layered on top of a
// cluster's fitted failure distributions.
type Scenario struct {
	Bursts     []Burst
	Inflations []RepairInflation
	Cascade    *Cascade
}

// Empty reports whether the scenario injects nothing.
func (s Scenario) Empty() bool {
	return len(s.Bursts) == 0 && len(s.Inflations) == 0 && s.Cascade == nil
}

// Validate checks every component against a cluster of the given size.
func (s Scenario) Validate(clusterSize int) error {
	if clusterSize <= 0 {
		return fmt.Errorf("resilience: scenario needs a non-empty cluster")
	}
	for i, b := range s.Bursts {
		if err := b.Validate(clusterSize); err != nil {
			return fmt.Errorf("burst %d: %w", i, err)
		}
	}
	for i, r := range s.Inflations {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("inflation %d: %w", i, err)
		}
	}
	if s.Cascade != nil {
		if err := s.Cascade.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// RepairScale returns the combined inflation factor for a repair
// beginning at time now: the product of every active window's Factor.
func (s Scenario) RepairScale(now time.Duration) float64 {
	f := 1.0
	for _, iv := range s.Inflations {
		if now >= iv.From && now < iv.Until {
			f *= iv.Factor
		}
	}
	return f
}
