// Package mathx provides the special functions and numerical routines that
// the distribution-fitting layer is built on. Everything here is implemented
// from scratch on top of the Go standard library's math package.
//
// The implementations follow standard numerical-methods references
// (Abramowitz & Stegun; Numerical Recipes-style series/continued-fraction
// splits) and are validated in the test suite against high-precision
// reference values.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrDomain is returned (or wrapped) by routines whose argument lies outside
// the mathematical domain of the function.
var ErrDomain = errors.New("mathx: argument outside domain")

const (

	// epsRel is the relative tolerance used by iterative expansions.
	epsRel = 1e-14

	// maxIter bounds series and continued-fraction iterations.
	maxIter = 500
)

// GammaRegP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
func GammaRegP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN(), ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	if math.IsInf(x, 1) {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaPSeries(a, x)
		return p, err
	}
	q, err := gammaQContinuedFraction(a, x)
	if err != nil {
		return math.NaN(), err
	}
	return 1 - q, nil
}

// GammaRegQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaRegQ(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN(), ErrDomain
	}
	if x == 0 {
		return 1, nil
	}
	if math.IsInf(x, 1) {
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaPSeries(a, x)
		if err != nil {
			return math.NaN(), err
		}
		return 1 - p, nil
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a, x) by its power series, accurate for x < a+1.
func gammaPSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsRel {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return math.NaN(), errors.New("mathx: incomplete gamma series did not converge")
}

// gammaQContinuedFraction evaluates Q(a, x) by the Lentz continued fraction,
// accurate for x >= a+1.
func gammaQContinuedFraction(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsRel {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return math.NaN(), errors.New("mathx: incomplete gamma continued fraction did not converge")
}

// GammaPInv inverts the regularized lower incomplete gamma function:
// it returns x such that P(a, x) = p, for a > 0 and p in [0, 1].
func GammaPInv(a, p float64) (float64, error) {
	if a <= 0 || p < 0 || p > 1 || math.IsNaN(a) || math.IsNaN(p) {
		return math.NaN(), ErrDomain
	}
	if p == 0 {
		return 0, nil
	}
	if p == 1 {
		return math.Inf(1), nil
	}
	// Initial guess: Wilson–Hilferty for a > 1, small-x series inversion
	// otherwise; then solve in log space with Brent, which is robust across
	// the extreme tails the repair/interarrival quantiles need.
	var x0 float64
	if a > 1 {
		z, err := NormQuantile(p)
		if err != nil {
			return math.NaN(), err
		}
		a1 := 1 / (9 * a)
		x0 = a * math.Pow(1-a1+z*math.Sqrt(a1), 3)
	} else {
		lg, _ := math.Lgamma(a + 1)
		// P(a, x) ≈ x^a / Γ(a+1) for small x.
		x0 = math.Exp((math.Log(p) + lg) / a)
	}
	if x0 <= 0 || math.IsNaN(x0) || math.IsInf(x0, 0) {
		x0 = a
	}
	g := func(y float64) float64 {
		v, err := GammaRegP(a, math.Exp(y))
		if err != nil {
			return math.NaN()
		}
		return v - p
	}
	y0 := math.Log(x0)
	lo, hi := y0-1, y0+1
	gLo, gHi := g(lo), g(hi)
	for i := 0; i < 200 && gLo > 0; i++ {
		lo -= 2
		gLo = g(lo)
	}
	for i := 0; i < 200 && gHi < 0; i++ {
		hi += 2
		gHi = g(hi)
	}
	if gLo > 0 || gHi < 0 || math.IsNaN(gLo) || math.IsNaN(gHi) {
		return math.NaN(), fmt.Errorf("gamma quantile(a=%g, p=%g): %w", a, p, ErrBracket)
	}
	y, err := Brent(g, lo, hi, 1e-13)
	if err != nil {
		return math.NaN(), fmt.Errorf("gamma quantile(a=%g, p=%g): %w", a, p, err)
	}
	return math.Exp(y), nil
}

// Digamma computes the digamma function ψ(x) = d/dx ln Γ(x) for x > 0.
func Digamma(x float64) (float64, error) {
	if math.IsNaN(x) || x <= 0 {
		return math.NaN(), ErrDomain
	}
	result := 0.0
	// Recurrence to push x above the asymptotic threshold.
	for x < 12 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion with Bernoulli-number coefficients.
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2*(1.0/132-inv2*(691.0/32760))))))
	return result, nil
}

// Trigamma computes ψ'(x), the derivative of the digamma function, for x > 0.
func Trigamma(x float64) (float64, error) {
	if math.IsNaN(x) || x <= 0 {
		return math.NaN(), ErrDomain
	}
	result := 0.0
	for x < 12 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	result += inv * (1 + inv*(0.5+inv*(1.0/6-inv2*(1.0/30-inv2*(1.0/42-inv2*(1.0/30-inv2*(5.0/66)))))))
	return result, nil
}

// NormCDF is the standard normal cumulative distribution function Φ(z).
func NormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormPDF is the standard normal density φ(z).
func NormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// NormQuantile computes Φ⁻¹(p), the inverse standard normal CDF, using the
// Acklam rational approximation refined by one Halley step. Accuracy is
// better than 1e-12 over (0, 1).
func NormQuantile(p float64) (float64, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN(), ErrDomain
	}
	switch p {
	case 0:
		return math.Inf(-1), nil
	case 1:
		return math.Inf(1), nil
	}
	// Acklam coefficients.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x, nil
}

// LogSumExp computes log(exp(a) + exp(b)) without overflow.
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	m := math.Max(a, b)
	return m + math.Log(math.Exp(a-m)+math.Exp(b-m))
}

// LogFactorial returns ln(n!) computed through the log-gamma function.
func LogFactorial(n int) (float64, error) {
	if n < 0 {
		return math.NaN(), ErrDomain
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg, nil
}
