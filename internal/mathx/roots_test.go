package mathx

import (
	"errors"
	"math"
	"testing"
)

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, root, math.Sqrt2, 1e-10, "bisect sqrt(2)")

	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); !errors.Is(err, ErrBracket) {
		t.Fatalf("want ErrBracket, got %v", err)
	}

	// Exact endpoints.
	root, err = Bisect(func(x float64) float64 { return x }, 0, 1, 1e-9)
	if err != nil || root != 0 {
		t.Fatalf("bisect endpoint root: %v, %v", root, err)
	}
}

func TestBrent(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cos", math.Cos, 1, 2, math.Pi / 2},
		{"cubic", func(x float64) float64 { return x*x*x - x - 2 }, 1, 2, 1.5213797068045676},
		{"expm1", func(x float64) float64 { return math.Exp(x) - 10 }, 0, 5, math.Log(10)},
	}
	for _, tc := range tests {
		root, err := Brent(tc.f, tc.a, tc.b, 1e-13)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		almostEqual(t, root, tc.want, 1e-9, "brent "+tc.name)
	}
	if _, err := Brent(func(x float64) float64 { return 1 }, 0, 1, 1e-9); !errors.Is(err, ErrBracket) {
		t.Fatalf("want ErrBracket, got %v", err)
	}
}

func TestFindBracket(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	a, b, err := FindBracket(f, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Signbit(f(a)) == math.Signbit(f(b)) {
		t.Fatalf("interval [%g, %g] does not bracket", a, b)
	}
	if _, _, err := FindBracket(f, 2, 1); err == nil {
		t.Fatal("inverted interval: want error")
	}
	if _, _, err := FindBracket(func(x float64) float64 { return 1 + x*x }, -1, 1); err == nil {
		t.Fatal("positive function: want error")
	}
}

func TestNewtonBounded(t *testing.T) {
	// Solve ln(x) = 1 within (0, 10).
	root, err := NewtonBounded(
		func(x float64) float64 { return math.Log(x) - 1 },
		func(x float64) float64 { return 1 / x },
		2, 0, 10, 1e-13,
	)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, root, math.E, 1e-10, "newton ln(x)=1")

	if _, err := NewtonBounded(
		func(x float64) float64 { return 1 },
		func(x float64) float64 { return 0 },
		1, 0, 2, 1e-9,
	); err == nil {
		t.Fatal("zero derivative: want error")
	}
}

func TestGoldenSection(t *testing.T) {
	min, err := GoldenSection(func(x float64) float64 { return (x - 3) * (x - 3) }, 0, 10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, min, 3, 1e-7, "golden section quadratic")
	if _, err := GoldenSection(func(x float64) float64 { return x }, 5, 1, 1e-9); err == nil {
		t.Fatal("inverted interval: want error")
	}
}

func TestNelderMead(t *testing.T) {
	// Rosenbrock function; minimum at (1, 1).
	rosen := func(v []float64) float64 {
		x, y := v[0], v[1]
		return 100*(y-x*x)*(y-x*x) + (1-x)*(1-x)
	}
	pt, val, err := NelderMead(rosen, []float64{-1.2, 1}, 0.5, 1e-14, 6000)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, pt[0], 1, 1e-3, "rosenbrock x")
	almostEqual(t, pt[1], 1, 1e-3, "rosenbrock y")
	if val > 1e-6 {
		t.Fatalf("rosenbrock value %g too large", val)
	}

	// 1-D quadratic through NelderMead.
	pt, _, err = NelderMead(func(v []float64) float64 { return (v[0] + 4) * (v[0] + 4) }, []float64{10}, 1, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, pt[0], -4, 1e-4, "1-D quadratic")

	if _, _, err := NelderMead(rosen, nil, 1, 1e-9, 10); err == nil {
		t.Fatal("empty start: want error")
	}
}

func TestSimpson(t *testing.T) {
	// ∫₀^π sin = 2.
	got, err := Simpson(math.Sin, 0, math.Pi, 1000)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, got, 2, 1e-10, "simpson sin")
	// Polynomial exact for Simpson: ∫₀¹ x³ = 1/4 with any even n.
	got, err = Simpson(func(x float64) float64 { return x * x * x }, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, got, 0.25, 1e-12, "simpson cubic")
	// Odd n is rounded up, tiny n clamped.
	if _, err := Simpson(math.Sin, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Simpson(math.Sin, 1, 1, 10); err == nil {
		t.Fatal("empty interval: want error")
	}
}
