package mathx

import (
	"math"
	"testing"
)

// jitter is deterministic high-frequency noise: the same x always gets the
// same perturbation, as when an optimizer's objective is a seeded
// simulation. Amplitude amp, period ~1e-3 in x.
func jitter(x, amp float64) float64 { return amp * math.Sin(4973*x) }

// The noise regime the sweep engine runs optimizers in: a smooth bowl
// plus seeded jitter far smaller than the bowl's curvature signal. The
// search must land near the true minimum despite every evaluation lying.
func TestGoldenSectionNoisyQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x-3)*(x-3) + jitter(x, 1e-3) }
	x, err := GoldenSection(f, 0.5, 10, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// Noise of amplitude a can displace the argmin of x^2+noise by about
	// sqrt(a); allow a generous multiple.
	if math.Abs(x-3) > 0.1 {
		t.Fatalf("minimizer %g, want near 3", x)
	}
}

// A plateau objective (flat bottom over [1.5, 2.5]) must terminate inside
// the flat region rather than oscillate or error: ties (f1 == f2) take
// the else branch deterministically.
func TestGoldenSectionPlateau(t *testing.T) {
	f := func(x float64) float64 { return math.Max(math.Abs(x-2)-0.5, 0) }
	x, err := GoldenSection(f, 0, 6, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if x < 1.5-1e-3 || x > 2.5+1e-3 {
		t.Fatalf("minimizer %g outside plateau [1.5, 2.5]", x)
	}
}

// A monotone objective has its minimum on the boundary; the bracket must
// collapse onto that endpoint, not stall mid-interval.
func TestGoldenSectionBoundaryMinima(t *testing.T) {
	cases := []struct {
		f    func(float64) float64
		want float64
	}{
		{func(x float64) float64 { return x + jitter(x, 1e-6) }, 1},  // left edge
		{func(x float64) float64 { return -x + jitter(x, 1e-6) }, 5}, // right edge
	}
	for _, c := range cases {
		x, err := GoldenSection(c.f, 1, 5, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(x-c.want) > 1e-3 {
			t.Fatalf("minimizer %g, want boundary %g", x, c.want)
		}
	}
}

// Two identical searches must produce bit-identical evaluation
// trajectories and results — the property the sweep's golden harness
// leans on.
func TestGoldenSectionDeterministic(t *testing.T) {
	runOnce := func() ([]float64, float64) {
		var traj []float64
		f := func(x float64) float64 {
			traj = append(traj, x)
			return math.Cos(x) + jitter(x, 1e-4)
		}
		x, err := GoldenSection(f, 0, 6, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		return traj, x
	}
	trajA, xA := runOnce()
	trajB, xB := runOnce()
	if xA != xB || len(trajA) != len(trajB) {
		t.Fatalf("non-deterministic: %v (%d evals) vs %v (%d evals)", xA, len(trajA), xB, len(trajB))
	}
	for i := range trajA {
		if trajA[i] != trajB[i] {
			t.Fatalf("trajectories diverge at eval %d: %v vs %v", i, trajA[i], trajB[i])
		}
	}
}

func TestNelderMeadNoisyBowl(t *testing.T) {
	target := []float64{1, -2, 0.5}
	f := func(x []float64) float64 {
		var s float64
		for i, v := range x {
			s += (v - target[i]) * (v - target[i])
			s += jitter(v, 1e-4)
		}
		return s
	}
	x, fx, err := NelderMead(f, []float64{0, 0, 0}, 1, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-target[i]) > 0.05 {
			t.Fatalf("x = %v (f = %g), want near %v", x, fx, target)
		}
	}
}

// A plateau floor: once the simplex reaches the flat region every vertex
// ties and the relative-spread stopping rule must fire instead of
// churning to maxIter.
func TestNelderMeadPlateau(t *testing.T) {
	f := func(x []float64) float64 {
		return math.Max(math.Abs(x[0])+math.Abs(x[1])-1, 0)
	}
	x, fx, err := NelderMead(f, []float64{4, 4}, 1, 1e-9, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if fx > 1e-6 {
		t.Fatalf("stopped at %v with f = %g, want plateau value 0", x, fx)
	}
}

// Clamp-plus-penalty boundaries, as the sweep's policy refinement uses:
// the unconstrained minimum lies outside the feasible box, so the search
// must settle on the boundary the penalty creates.
func TestNelderMeadPenaltyBoundary(t *testing.T) {
	f := func(x []float64) float64 {
		v := -x[0] // unbounded descent rightward...
		if x[0] > 2 {
			v += 10 * (x[0] - 2) // ...until the penalty wall at 2
		}
		return v + jitter(x[0], 1e-6)
	}
	x, _, err := NelderMead(f, []float64{0}, 0.5, 1e-12, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-3 {
		t.Fatalf("x = %v, want boundary 2", x)
	}
}

func TestNelderMeadDeterministic(t *testing.T) {
	runOnce := func() ([][]float64, []float64) {
		var traj [][]float64
		f := func(x []float64) float64 {
			traj = append(traj, append([]float64(nil), x...))
			s := math.Sin(x[0]) + x[1]*x[1]
			return s + jitter(x[0]+x[1], 1e-5)
		}
		x, _, err := NelderMead(f, []float64{2, 2}, 0.8, 1e-8, 500)
		if err != nil {
			t.Fatal(err)
		}
		return traj, x
	}
	trajA, xA := runOnce()
	trajB, xB := runOnce()
	if len(trajA) != len(trajB) {
		t.Fatalf("eval counts differ: %d vs %d", len(trajA), len(trajB))
	}
	for i := range trajA {
		for j := range trajA[i] {
			if trajA[i][j] != trajB[i][j] {
				t.Fatalf("trajectories diverge at eval %d: %v vs %v", i, trajA[i], trajB[i])
			}
		}
	}
	for j := range xA {
		if xA[j] != xB[j] {
			t.Fatalf("results differ: %v vs %v", xA, xB)
		}
	}
}
