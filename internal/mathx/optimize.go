package mathx

import (
	"fmt"
	"math"
)

// GoldenSection minimizes a unimodal function f on [a, b] by golden-section
// search, returning the minimizer location.
func GoldenSection(f func(float64) float64, a, b, tol float64) (float64, error) {
	if a >= b {
		return math.NaN(), fmt.Errorf("golden section on [%g, %g]: %w", a, b, ErrDomain)
	}
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 300; i++ {
		if b-a < tol {
			return a + (b-a)/2, nil
		}
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return math.NaN(), fmt.Errorf("golden section: %w", ErrNoConvergence)
}

// NelderMead minimizes f over R^n starting from x0 using the Nelder–Mead
// simplex algorithm with standard coefficients. It returns the best point
// found. scale controls the size of the initial simplex.
func NelderMead(f func([]float64) float64, x0 []float64, scale, tol float64, maxIter int) ([]float64, float64, error) {
	n := len(x0)
	if n == 0 {
		return nil, math.NaN(), fmt.Errorf("nelder-mead: empty start point: %w", ErrDomain)
	}
	if maxIter <= 0 {
		maxIter = 200 * n
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	// Build the initial simplex.
	simplex := make([][]float64, n+1)
	fvals := make([]float64, n+1)
	for i := range simplex {
		pt := make([]float64, n)
		copy(pt, x0)
		if i > 0 {
			if pt[i-1] != 0 {
				pt[i-1] += scale * math.Abs(pt[i-1])
			} else {
				pt[i-1] = scale
			}
		}
		simplex[i] = pt
		fvals[i] = f(pt)
	}
	order := func() {
		// Insertion sort: simplex is tiny.
		for i := 1; i <= n; i++ {
			for j := i; j > 0 && fvals[j] < fvals[j-1]; j-- {
				fvals[j], fvals[j-1] = fvals[j-1], fvals[j]
				simplex[j], simplex[j-1] = simplex[j-1], simplex[j]
			}
		}
	}
	centroid := make([]float64, n)
	trial := make([]float64, n)
	trial2 := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		order()
		if math.Abs(fvals[n]-fvals[0]) <= tol*(math.Abs(fvals[0])+math.Abs(fvals[n])+1e-300) {
			return simplex[0], fvals[0], nil
		}
		// Centroid of all but the worst point.
		for j := 0; j < n; j++ {
			centroid[j] = 0
			for i := 0; i < n; i++ {
				centroid[j] += simplex[i][j]
			}
			centroid[j] /= float64(n)
		}
		// Reflection.
		for j := 0; j < n; j++ {
			trial[j] = centroid[j] + alpha*(centroid[j]-simplex[n][j])
		}
		fr := f(trial)
		switch {
		case fr < fvals[0]:
			// Expansion.
			for j := 0; j < n; j++ {
				trial2[j] = centroid[j] + gamma*(trial[j]-centroid[j])
			}
			fe := f(trial2)
			if fe < fr {
				copy(simplex[n], trial2)
				fvals[n] = fe
			} else {
				copy(simplex[n], trial)
				fvals[n] = fr
			}
		case fr < fvals[n-1]:
			copy(simplex[n], trial)
			fvals[n] = fr
		default:
			// Contraction.
			if fr < fvals[n] {
				for j := 0; j < n; j++ {
					trial2[j] = centroid[j] + rho*(trial[j]-centroid[j])
				}
			} else {
				for j := 0; j < n; j++ {
					trial2[j] = centroid[j] + rho*(simplex[n][j]-centroid[j])
				}
			}
			fc := f(trial2)
			if fc < math.Min(fr, fvals[n]) {
				copy(simplex[n], trial2)
				fvals[n] = fc
			} else {
				// Shrink toward the best point.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i][j] = simplex[0][j] + sigma*(simplex[i][j]-simplex[0][j])
					}
					fvals[i] = f(simplex[i])
				}
			}
		}
	}
	order()
	return simplex[0], fvals[0], nil
}

// Simpson integrates f over [a, b] with composite Simpson's rule using n
// subintervals (rounded up to even).
func Simpson(f func(float64) float64, a, b float64, n int) (float64, error) {
	if !(a < b) {
		return math.NaN(), fmt.Errorf("simpson on [%g, %g]: %w", a, b, ErrDomain)
	}
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3, nil
}
