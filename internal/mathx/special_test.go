package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
	if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s: got %.15g, want %.15g (tol %g)", msg, got, want, tol)
	}
}

func TestGammaRegPReferenceValues(t *testing.T) {
	// Reference values computed with mpmath (50-digit precision).
	tests := []struct {
		a, x, want float64
	}{
		{1, 1, 0.63212055882855768},      // 1 - e^{-1}
		{1, 2, 0.86466471676338731},      // 1 - e^{-2}
		{0.5, 0.5, 0.68268949213708585},  // erf(sqrt(0.5))
		{2, 3, 0.80085172652854419},      // P(2,3)
		{5, 5, 0.55950671493478743},      // P(5,5)
		{10, 3, 0.0011024881301489198},   // deep lower tail
		{0.7, 3.2, 0.97940084484599970},  // fractional shape
		{3, 0.1, 0.00015465307026470},    // small x
		{100, 100, 0.51329879827913130},  // large a near mean
		{0.1, 1e-6, 0.26403365432792240}, // tiny x, small a
	}
	for _, tc := range tests {
		got, err := GammaRegP(tc.a, tc.x)
		if err != nil {
			t.Fatalf("GammaRegP(%g, %g): %v", tc.a, tc.x, err)
		}
		almostEqual(t, got, tc.want, 1e-11, "GammaRegP")
	}
}

func TestGammaRegPEdgeCases(t *testing.T) {
	if p, err := GammaRegP(2, 0); err != nil || p != 0 {
		t.Fatalf("P(2,0) = %v, %v; want 0, nil", p, err)
	}
	if p, err := GammaRegP(2, math.Inf(1)); err != nil || p != 1 {
		t.Fatalf("P(2,inf) = %v, %v; want 1, nil", p, err)
	}
	for _, bad := range [][2]float64{{0, 1}, {-1, 1}, {1, -1}, {math.NaN(), 1}, {1, math.NaN()}} {
		if _, err := GammaRegP(bad[0], bad[1]); err == nil {
			t.Fatalf("GammaRegP(%g, %g): want domain error", bad[0], bad[1])
		}
	}
}

func TestGammaRegPQComplement(t *testing.T) {
	f := func(aRaw, xRaw float64) bool {
		a := 0.05 + math.Abs(math.Mod(aRaw, 50))
		x := math.Abs(math.Mod(xRaw, 100))
		p, err1 := GammaRegP(a, x)
		q, err2 := GammaRegQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(p+q-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaRegPMonotoneInX(t *testing.T) {
	f := func(aRaw float64) bool {
		a := 0.1 + math.Abs(math.Mod(aRaw, 20))
		prev := -1.0
		for x := 0.0; x < 40; x += 0.5 {
			p, err := GammaRegP(a, x)
			if err != nil || p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaPInvRoundTrip(t *testing.T) {
	for _, a := range []float64{0.3, 0.5, 0.78, 1, 2, 5, 17.5, 120} {
		for _, p := range []float64{1e-6, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999999} {
			x, err := GammaPInv(a, p)
			if err != nil {
				t.Fatalf("GammaPInv(%g, %g): %v", a, p, err)
			}
			back, err := GammaRegP(a, x)
			if err != nil {
				t.Fatalf("GammaRegP(%g, %g): %v", a, x, err)
			}
			almostEqual(t, back, p, 1e-8, "GammaPInv round trip")
		}
	}
}

func TestGammaPInvEdges(t *testing.T) {
	if x, err := GammaPInv(2, 0); err != nil || x != 0 {
		t.Fatalf("GammaPInv(2, 0) = %v, %v", x, err)
	}
	if x, err := GammaPInv(2, 1); err != nil || !math.IsInf(x, 1) {
		t.Fatalf("GammaPInv(2, 1) = %v, %v", x, err)
	}
	if _, err := GammaPInv(-1, 0.5); err == nil {
		t.Fatal("GammaPInv(-1, 0.5): want error")
	}
	if _, err := GammaPInv(1, 1.5); err == nil {
		t.Fatal("GammaPInv(1, 1.5): want error")
	}
}

func TestDigammaReferenceValues(t *testing.T) {
	tests := []struct{ x, want float64 }{
		{1, -0.57721566490153286},
		{2, 0.42278433509846714},
		{0.5, -1.9635100260214235},
		{10, 2.2517525890667211},
		{0.1, -10.423754940411076},
		{100, 4.6001618527380874},
	}
	for _, tc := range tests {
		got, err := Digamma(tc.x)
		if err != nil {
			t.Fatalf("Digamma(%g): %v", tc.x, err)
		}
		almostEqual(t, got, tc.want, 1e-12, "Digamma")
	}
	if _, err := Digamma(0); err == nil {
		t.Fatal("Digamma(0): want error")
	}
	if _, err := Digamma(-3); err == nil {
		t.Fatal("Digamma(-3): want error")
	}
}

func TestDigammaRecurrence(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x.
	f := func(raw float64) bool {
		x := 0.05 + math.Abs(math.Mod(raw, 30))
		a, err1 := Digamma(x + 1)
		b, err2 := Digamma(x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a-(b+1/x)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTrigammaReferenceValues(t *testing.T) {
	tests := []struct{ x, want float64 }{
		{1, 1.6449340668482264},   // pi^2/6
		{2, 0.64493406684822644},  // pi^2/6 - 1
		{0.5, 4.9348022005446793}, // pi^2/2
		{10, 0.10516633568168575},
	}
	for _, tc := range tests {
		got, err := Trigamma(tc.x)
		if err != nil {
			t.Fatalf("Trigamma(%g): %v", tc.x, err)
		}
		almostEqual(t, got, tc.want, 1e-11, "Trigamma")
	}
	if _, err := Trigamma(-1); err == nil {
		t.Fatal("Trigamma(-1): want error")
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-12, 1e-6, 0.001, 0.025, 0.31, 0.5, 0.77, 0.975, 0.999, 1 - 1e-9} {
		z, err := NormQuantile(p)
		if err != nil {
			t.Fatalf("NormQuantile(%g): %v", p, err)
		}
		almostEqual(t, NormCDF(z), p, 1e-10, "NormQuantile round trip")
	}
}

func TestNormQuantileKnownValues(t *testing.T) {
	z, err := NormQuantile(0.975)
	if err != nil {
		t.Fatal(err)
	}
	almostEqual(t, z, 1.9599639845400545, 1e-10, "z(0.975)")
	z, err = NormQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z) > 1e-12 {
		t.Fatalf("z(0.5) = %g, want 0", z)
	}
	if zInf, err := NormQuantile(0); err != nil || !math.IsInf(zInf, -1) {
		t.Fatalf("z(0) = %v, %v", zInf, err)
	}
	if zInf, err := NormQuantile(1); err != nil || !math.IsInf(zInf, 1) {
		t.Fatalf("z(1) = %v, %v", zInf, err)
	}
	if _, err := NormQuantile(-0.1); err == nil {
		t.Fatal("z(-0.1): want error")
	}
}

func TestNormCDFSymmetry(t *testing.T) {
	f := func(z float64) bool {
		z = math.Mod(z, 8)
		return math.Abs(NormCDF(z)+NormCDF(-z)-1) < 1e-14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp(math.Log(2), math.Log(3))
	almostEqual(t, got, math.Log(5), 1e-14, "LogSumExp(ln2, ln3)")
	// Overflow safety.
	got = LogSumExp(1000, 1000)
	almostEqual(t, got, 1000+math.Ln2, 1e-12, "LogSumExp(1000,1000)")
	if LogSumExp(math.Inf(-1), 3) != 3 {
		t.Fatal("LogSumExp(-inf, 3) should be 3")
	}
	if LogSumExp(7, math.Inf(-1)) != 7 {
		t.Fatal("LogSumExp(7, -inf) should be 7")
	}
}

func TestLogFactorial(t *testing.T) {
	want := 0.0
	for n := 0; n <= 20; n++ {
		got, err := LogFactorial(n)
		if err != nil {
			t.Fatal(err)
		}
		almostEqual(t, got, want, 1e-12, "LogFactorial")
		want += math.Log(float64(n + 1))
	}
	if _, err := LogFactorial(-1); err == nil {
		t.Fatal("LogFactorial(-1): want error")
	}
}
