package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver fails to reach the
// requested tolerance within its iteration budget.
var ErrNoConvergence = errors.New("mathx: no convergence")

// ErrBracket is returned when a bracketing solver is handed an interval on
// which the function does not change sign.
var ErrBracket = errors.New("mathx: root not bracketed")

// Bisect finds a root of f on [a, b] by bisection. f(a) and f(b) must have
// opposite signs. tol is the absolute tolerance on the root location.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return math.NaN(), fmt.Errorf("bisect on [%g, %g]: %w", a, b, ErrBracket)
	}
	for i := 0; i < 200; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return math.NaN(), fmt.Errorf("bisect: %w", ErrNoConvergence)
}

// Brent finds a root of f on [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). f(a) and f(b) must have opposite
// signs.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return math.NaN(), fmt.Errorf("brent on [%g, %g]: %w", a, b, ErrBracket)
	}
	c, fc := a, fa
	d := b - a
	e := d
	for i := 0; i < 200; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + tol/2
		xm := (c - b) / 2
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e = d
				d = p / q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
		if math.Signbit(fb) != math.Signbit(fc) {
			// keep the bracket
		} else {
			c, fc = a, fa
			d = b - a
			e = d
		}
	}
	return math.NaN(), fmt.Errorf("brent: %w", ErrNoConvergence)
}

// FindBracket expands outward from [a, b] geometrically until f changes sign
// across the interval, returning the bracketing pair. It is used to seed
// Brent when only a rough starting interval is known.
func FindBracket(f func(float64) float64, a, b float64) (float64, float64, error) {
	if a >= b {
		return math.NaN(), math.NaN(), fmt.Errorf("find bracket: invalid interval [%g, %g]: %w", a, b, ErrDomain)
	}
	const factor = 1.6
	fa, fb := f(a), f(b)
	for i := 0; i < 80; i++ {
		if math.Signbit(fa) != math.Signbit(fb) {
			return a, b, nil
		}
		if math.Abs(fa) < math.Abs(fb) {
			a += factor * (a - b)
			fa = f(a)
		} else {
			b += factor * (b - a)
			fb = f(b)
		}
	}
	return math.NaN(), math.NaN(), fmt.Errorf("find bracket: %w", ErrBracket)
}

// NewtonBounded performs a damped Newton iteration on f with derivative df,
// constrained to (lo, hi). The step is halved until it stays in bounds.
func NewtonBounded(f, df func(float64) float64, x0, lo, hi, tol float64) (float64, error) {
	x := x0
	for i := 0; i < 100; i++ {
		fx := f(x)
		dfx := df(x)
		if dfx == 0 {
			return math.NaN(), fmt.Errorf("newton: zero derivative at %g: %w", x, ErrNoConvergence)
		}
		step := fx / dfx
		xNew := x - step
		for j := 0; j < 60 && (xNew <= lo || xNew >= hi); j++ {
			step /= 2
			xNew = x - step
		}
		if xNew <= lo || xNew >= hi {
			return math.NaN(), fmt.Errorf("newton: iterate escaped (%g, %g): %w", lo, hi, ErrNoConvergence)
		}
		if math.Abs(xNew-x) <= tol*math.Max(1, math.Abs(xNew)) {
			return xNew, nil
		}
		x = xNew
	}
	return math.NaN(), fmt.Errorf("newton: %w", ErrNoConvergence)
}
