package trend

import (
	"errors"
	"math"
	"sort"
	"testing"

	"hpcfail/internal/lanl"
	"hpcfail/internal/randx"
)

// simulatePowerLaw draws event times from a power-law NHPP on (0, horizon]
// by inversion of the cumulative intensity.
func simulatePowerLaw(src *randx.Source, beta, eta, horizon float64) []float64 {
	// N(horizon) ~ Poisson((horizon/eta)^beta); given N, event times are
	// iid with CDF (t/horizon)^beta.
	mean := math.Pow(horizon/eta, beta)
	n := src.Poisson(mean)
	out := make([]float64, n)
	for i := range out {
		u := src.Float64()
		out[i] = horizon * math.Pow(u, 1/beta)
	}
	sort.Float64s(out)
	return out
}

func TestLaplaceDetectsTrends(t *testing.T) {
	src := randx.NewSource(1)
	const horizon = 1000.0

	// Improving: power-law with beta 0.6 (early-heavy events).
	improving := simulatePowerLaw(src, 0.6, 1, horizon)
	res, err := Laplace(improving, horizon, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Improving || res.U >= 0 {
		t.Fatalf("improving series: %+v", res)
	}

	// Deteriorating: beta 1.8.
	deteriorating := simulatePowerLaw(src, 1.8, 10, horizon)
	res, err = Laplace(deteriorating, horizon, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Deteriorating || res.U <= 0 {
		t.Fatalf("deteriorating series: %+v", res)
	}

	// Stable: homogeneous Poisson (beta 1).
	stable := simulatePowerLaw(src, 1, 2, horizon)
	res, err = Laplace(stable, horizon, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict == Improving && res.P < 0.01 {
		t.Fatalf("stable series misclassified: %+v", res)
	}
	if res.P < 0 || res.P > 1 {
		t.Fatalf("p-value %g out of range", res.P)
	}
}

func TestLaplaceErrors(t *testing.T) {
	if _, err := Laplace([]float64{1, 2}, 10, 0.05); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("too few events: want ErrInsufficientData")
	}
	if _, err := Laplace([]float64{1, 2, 3, 4}, 0, 0.05); err == nil {
		t.Fatal("zero horizon: want error")
	}
	if _, err := Laplace([]float64{1, 2, 3, 4}, 10, 1.5); err == nil {
		t.Fatal("bad alpha: want error")
	}
	if _, err := Laplace([]float64{1, 2, 3, 40}, 10, 0.05); err == nil {
		t.Fatal("event beyond horizon: want error")
	}
	if _, err := Laplace([]float64{-1, 2, 3, 4}, 10, 0.05); err == nil {
		t.Fatal("negative event: want error")
	}
}

// TestZeroEventTimeBoundary pins how each trend tool treats an event at
// the observation origin — the offset a Dataset.OffsetHours caller now
// receives for a record starting exactly at the system's start time.
// Laplace and FindChangePoint accept it as a real event; FitPowerLaw
// drops it (ln(T/0) diverges) and reports N as the events actually used.
func TestZeroEventTimeBoundary(t *testing.T) {
	withZero := []float64{0, 1, 2, 4, 5, 6, 7, 8, 9}

	res, err := Laplace(withZero, 10, 0.05)
	if err != nil {
		t.Fatalf("Laplace rejected a zero event time: %v", err)
	}
	want, err := Laplace([]float64{1e-12, 1, 2, 4, 5, 6, 7, 8, 9}, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.U-want.U) > 1e-9 {
		t.Fatalf("Laplace U with zero event = %g, want ~%g (zero contributes zero to the mean)", res.U, want.U)
	}

	if _, err := FindChangePoint(withZero, 10); err != nil {
		t.Fatalf("FindChangePoint rejected a zero event time: %v", err)
	}

	fit, err := FitPowerLaw(withZero, 10)
	if err != nil {
		t.Fatalf("FitPowerLaw with a zero event time: %v", err)
	}
	ref, err := FitPowerLaw(withZero[1:], 10)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != len(withZero)-1 || fit.Beta != ref.Beta || fit.Eta != ref.Eta {
		t.Fatalf("FitPowerLaw with zero = %+v, want the zero dropped: %+v", fit, ref)
	}
}

func TestFitPowerLawRecovers(t *testing.T) {
	src := randx.NewSource(2)
	const horizon = 5000.0
	for _, beta := range []float64{0.6, 1.0, 1.7} {
		// Scale eta so we get a few thousand events.
		eta := horizon / math.Pow(3000, 1/beta)
		events := simulatePowerLaw(src, beta, eta, horizon)
		fit, err := FitPowerLaw(events, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Beta-beta)/beta > 0.06 {
			t.Errorf("beta = %g, want %g", fit.Beta, beta)
		}
		// Expected events at horizon should approximate the actual count.
		if math.Abs(fit.ExpectedEvents(horizon)-float64(len(events)))/float64(len(events)) > 0.01 {
			t.Errorf("expected events %g vs actual %d", fit.ExpectedEvents(horizon), len(events))
		}
	}
}

func TestPowerLawVerdictAndIntensity(t *testing.T) {
	p := PowerLaw{Beta: 0.6, Eta: 10, N: 100, Horizon: 1000}
	if p.Verdict(0.1) != Improving {
		t.Fatal("beta 0.6 should be improving")
	}
	if (PowerLaw{Beta: 1.05}).Verdict(0.1) != Stable {
		t.Fatal("beta 1.05 should be stable at band 0.1")
	}
	if (PowerLaw{Beta: 1.5}).Verdict(0.1) != Deteriorating {
		t.Fatal("beta 1.5 should be deteriorating")
	}
	// Intensity decreasing for beta < 1.
	if !(p.Intensity(1) > p.Intensity(100)) {
		t.Fatal("beta<1 intensity should decrease")
	}
	if !math.IsInf(p.Intensity(0), 1) {
		t.Fatal("beta<1 intensity at 0 is +Inf")
	}
	if (PowerLaw{Beta: 2, Eta: 1}).Intensity(0) != 0 {
		t.Fatal("beta>1 intensity at 0 is 0")
	}
	if (PowerLaw{Beta: 1, Eta: 4}).Intensity(0) != 0.25 {
		t.Fatal("beta=1 intensity is 1/eta")
	}
	if p.ExpectedEvents(-5) != 0 {
		t.Fatal("expected events before 0")
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1, 2}, 10); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("too few: want error")
	}
	if _, err := FitPowerLaw([]float64{1, 2, 3}, -1); err == nil {
		t.Fatal("bad horizon: want error")
	}
	if _, err := FitPowerLaw([]float64{10, 10, 10}, 10); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("all at horizon: want error")
	}
	// Zero event times are dropped, not rejected: with only two usable
	// events left, the fit still (correctly) refuses for lack of data.
	if _, err := FitPowerLaw([]float64{0, 1, 2}, 10); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("zero event dropped leaving too few: want ErrInsufficientData")
	}
	if _, err := FitPowerLaw([]float64{-1, 1, 2, 3}, 10); err == nil {
		t.Fatal("negative event time: want error")
	}
}

func TestGoodnessOfFit(t *testing.T) {
	src := randx.NewSource(3)
	const horizon = 2000.0
	events := simulatePowerLaw(src, 0.7, 0.5, horizon)
	fit, err := FitPowerLaw(events, horizon)
	if err != nil {
		t.Fatal(err)
	}
	stat, err := fit.MilHdbk189GoodnessOfFit(events)
	if err != nil {
		t.Fatal(err)
	}
	// The generating process IS a power law: the statistic should be
	// small (well under the ~0.22 critical value).
	if stat > 0.22 {
		t.Fatalf("GoF statistic %g too large for power-law data", stat)
	}
	if _, err := fit.MilHdbk189GoodnessOfFit(events[:2]); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("too few: want error")
	}
}

func TestVerdictString(t *testing.T) {
	if Improving.String() != "improving" || Deteriorating.String() != "deteriorating" ||
		Stable.String() != "stable" || Verdict(9).String() != "Verdict(9)" {
		t.Fatal("verdict names")
	}
}

func TestTrendOnReferenceSystems(t *testing.T) {
	// The Figure 4 shapes, now statistically: system 5 (type E) improves
	// from day one; system 19 (type G) deteriorates over its first 20
	// months.
	d, err := lanl.NewGenerator(lanl.Config{Seed: 1, Systems: []int{5, 19}}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	eventOffsets := func(system int) ([]float64, float64) {
		sys, err := lanl.SystemByID(system)
		if err != nil {
			t.Fatal(err)
		}
		return d.BySystem(system).OffsetHours(sys.Start), sys.End.Sub(sys.Start).Hours()
	}

	ev5, hor5 := eventOffsets(5)
	res, err := Laplace(ev5, hor5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Improving {
		t.Errorf("system 5 Laplace verdict = %v (U=%.1f)", res.Verdict, res.U)
	}
	fit5, err := FitPowerLaw(ev5, hor5)
	if err != nil {
		t.Fatal(err)
	}
	if fit5.Beta >= 1 {
		t.Errorf("system 5 beta = %.2f, want < 1", fit5.Beta)
	}

	// System 19's first 20 months only: deteriorating.
	ev19, _ := eventOffsets(19)
	cut := 20 * 30.44 * 24.0
	var early []float64
	for _, t := range ev19 {
		if t <= cut {
			early = append(early, t)
		}
	}
	res, err = Laplace(early, cut, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Deteriorating {
		t.Errorf("system 19 early Laplace verdict = %v (U=%.1f)", res.Verdict, res.U)
	}
}
