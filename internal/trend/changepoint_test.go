package trend

import (
	"errors"
	"math"
	"sort"
	"testing"

	"hpcfail/internal/lanl"
	"hpcfail/internal/randx"
)

// simulateTwoRate draws a Poisson process with rate1 on (0, split] and
// rate2 on (split, horizon].
func simulateTwoRate(src *randx.Source, rate1, rate2, split, horizon float64) []float64 {
	var out []float64
	t := 0.0
	for {
		t += src.Exponential(rate1)
		if t > split {
			break
		}
		out = append(out, t)
	}
	t = split
	for {
		t += src.Exponential(rate2)
		if t > horizon {
			break
		}
		out = append(out, t)
	}
	sort.Float64s(out)
	return out
}

func TestFindChangePointRecoversSplit(t *testing.T) {
	src := randx.NewSource(1)
	const split, horizon = 400.0, 1000.0
	events := simulateTwoRate(src, 2.0, 0.3, split, horizon)
	cp, err := FindChangePoint(events, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cp.At-split) > 40 {
		t.Fatalf("change at %g, want ~%g", cp.At, split)
	}
	if math.Abs(cp.RateBefore-2)/2 > 0.15 {
		t.Fatalf("rate before = %g", cp.RateBefore)
	}
	if math.Abs(cp.RateAfter-0.3)/0.3 > 0.2 {
		t.Fatalf("rate after = %g", cp.RateAfter)
	}
	if cp.LogLikRatio < 50 {
		t.Fatalf("log-likelihood ratio %g too weak for a 6.7x change", cp.LogLikRatio)
	}
}

func TestFindChangePointStationaryIsWeak(t *testing.T) {
	src := randx.NewSource(2)
	events := simulateTwoRate(src, 1, 1, 500, 1000) // no change
	cp, err := FindChangePoint(events, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Some spurious split always maximizes the ratio, but it stays small.
	if cp.LogLikRatio > 10 {
		t.Fatalf("stationary process gave ratio %g", cp.LogLikRatio)
	}
}

func TestFindChangePointErrors(t *testing.T) {
	if _, err := FindChangePoint([]float64{1, 2, 3}, 10); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("too few events")
	}
	good := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if _, err := FindChangePoint(good, 0); err == nil {
		t.Fatal("bad horizon")
	}
	if _, err := FindChangePoint([]float64{1, 2, 3, 4, 5, 4, 7, 8, 9}, 10); err == nil {
		t.Fatal("out of order")
	}
	if _, err := FindChangePoint([]float64{1, 2, 3, 4, 5, 6, 7, 8, 99}, 10); err == nil {
		t.Fatal("beyond horizon")
	}
}

func TestChangePointOnSystem5(t *testing.T) {
	// System 5's infant-mortality decay (Figure 4a): the detected change
	// point falls within the first year of production and the rate drops.
	d, err := lanl.NewGenerator(lanl.Config{Seed: 1, Systems: []int{5}}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lanl.SystemByID(5)
	if err != nil {
		t.Fatal(err)
	}
	events := d.OffsetHours(sys.Start)
	horizon := sys.End.Sub(sys.Start).Hours()
	cp, err := FindChangePoint(events, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if cp.At > 24*548 { // 18 months
		t.Errorf("change point at %.0f h (%.1f months), expected early",
			cp.At, cp.At/(24*30.44))
	}
	if cp.RateAfter >= cp.RateBefore {
		t.Errorf("rate should drop: %.4f -> %.4f", cp.RateBefore, cp.RateAfter)
	}
	if cp.LogLikRatio < 5 {
		t.Errorf("ratio %.1f too weak", cp.LogLikRatio)
	}
}
