// Package trend provides reliability-trend tests for failure event series:
// the Laplace test and the Crow–AMSAA (power-law NHPP) model. The paper
// observes two failure-rate lifecycle shapes (Figure 4) by eye; these are
// the standard statistical tools that make such statements precise —
// whether a system's failure rate is improving (reliability growth, the
// Figure 4a decay), deteriorating, or stable.
package trend

import (
	"errors"
	"fmt"
	"math"

	"hpcfail/internal/mathx"
)

// ErrInsufficientData is returned when a test needs more events.
var ErrInsufficientData = errors.New("trend: insufficient data")

// Verdict classifies a failure-rate trend.
type Verdict int

// Trend verdicts.
const (
	// Improving means the failure rate decreases with time (reliability
	// growth; Figure 4a after the first months).
	Improving Verdict = iota + 1
	// Deteriorating means the failure rate increases with time (the first
	// ~20 months of Figure 4b).
	Deteriorating
	// Stable means no significant trend (a homogeneous Poisson process is
	// consistent with the data).
	Stable
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Improving:
		return "improving"
	case Deteriorating:
		return "deteriorating"
	case Stable:
		return "stable"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// LaplaceResult is the outcome of the Laplace trend test.
type LaplaceResult struct {
	// U is the test statistic, asymptotically standard normal under the
	// no-trend (homogeneous Poisson) hypothesis. U < 0 indicates
	// improvement, U > 0 deterioration.
	U float64
	// P is the two-sided p-value.
	P float64
	// Verdict applies the significance level supplied to the test.
	Verdict Verdict
}

// Laplace runs the Laplace trend test on event times in [0, horizon],
// using significance level alpha (e.g. 0.05) for the verdict. Event times
// are offsets from the start of observation, in any consistent unit; an
// event at time zero — a failure at the very start of observation — is
// valid and simply contributes zero to the statistic's mean.
func Laplace(eventTimes []float64, horizon, alpha float64) (LaplaceResult, error) {
	n := len(eventTimes)
	if n < 4 {
		return LaplaceResult{}, fmt.Errorf("trend: %d events, need >= 4: %w", n, ErrInsufficientData)
	}
	if horizon <= 0 || alpha <= 0 || alpha >= 1 {
		return LaplaceResult{}, fmt.Errorf("trend: horizon=%g alpha=%g invalid", horizon, alpha)
	}
	var sum float64
	for i, t := range eventTimes {
		if t < 0 || t > horizon {
			return LaplaceResult{}, fmt.Errorf("trend: event %d at %g outside [0, %g]", i, t, horizon)
		}
		sum += t
	}
	mean := sum / float64(n)
	u := (mean - horizon/2) / (horizon * math.Sqrt(1/(12*float64(n))))
	p := 2 * mathx.NormCDF(-math.Abs(u))
	res := LaplaceResult{U: u, P: p}
	switch {
	case p >= alpha:
		res.Verdict = Stable
	case u < 0:
		res.Verdict = Improving
	default:
		res.Verdict = Deteriorating
	}
	return res, nil
}

// PowerLaw is a fitted Crow–AMSAA (power-law) nonhomogeneous Poisson
// process with intensity λ(t) = (β/η) (t/η)^(β−1). β < 1 means the rate
// falls over time; β > 1 means it grows.
type PowerLaw struct {
	// Beta is the growth parameter.
	Beta float64
	// Eta is the scale parameter (same unit as the event times).
	Eta float64
	// N is the number of events used in the fit.
	N int
	// Horizon is the observation end used for the (time-truncated) MLE.
	Horizon float64
}

// FitPowerLaw computes the time-truncated MLE of the Crow–AMSAA model:
// β = n / Σ ln(T / t_i), η = T / n^{1/β}. Events at time zero are
// dropped rather than rejected: ln(T/t) diverges there, so an event at
// the observation origin carries no information for this MLE (the
// Laplace test, which has no such singularity, does count it). N in the
// result is the number of events the fit actually used.
func FitPowerLaw(eventTimes []float64, horizon float64) (PowerLaw, error) {
	if horizon <= 0 {
		return PowerLaw{}, fmt.Errorf("trend: horizon %g invalid", horizon)
	}
	var sumLog float64
	n := 0
	for i, t := range eventTimes {
		if t < 0 || t > horizon {
			return PowerLaw{}, fmt.Errorf("trend: event %d at %g outside [0, %g]", i, t, horizon)
		}
		if t == 0 {
			continue
		}
		sumLog += math.Log(horizon / t)
		n++
	}
	if n < 3 {
		return PowerLaw{}, fmt.Errorf("trend: %d usable events, need >= 3: %w", n, ErrInsufficientData)
	}
	if sumLog == 0 {
		return PowerLaw{}, fmt.Errorf("trend: all events at the horizon: %w", ErrInsufficientData)
	}
	beta := float64(n) / sumLog
	eta := horizon / math.Pow(float64(n), 1/beta)
	return PowerLaw{Beta: beta, Eta: eta, N: n, Horizon: horizon}, nil
}

// Intensity returns the fitted failure intensity λ(t).
func (p PowerLaw) Intensity(t float64) float64 {
	if t <= 0 {
		if p.Beta < 1 {
			return math.Inf(1)
		}
		if p.Beta > 1 {
			return 0
		}
		return 1 / p.Eta
	}
	return (p.Beta / p.Eta) * math.Pow(t/p.Eta, p.Beta-1)
}

// ExpectedEvents returns the fitted cumulative event count E[N(t)] =
// (t/η)^β.
func (p PowerLaw) ExpectedEvents(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return math.Pow(t/p.Eta, p.Beta)
}

// Verdict interprets β with the given tolerance band around 1 (e.g. 0.1:
// β < 0.9 improving, β > 1.1 deteriorating, otherwise stable).
func (p PowerLaw) Verdict(band float64) Verdict {
	switch {
	case p.Beta < 1-band:
		return Improving
	case p.Beta > 1+band:
		return Deteriorating
	default:
		return Stable
	}
}

// MilHdbk189GoodnessOfFit computes the Cramér–von Mises statistic of the
// power-law fit (the MIL-HDBK-189 procedure): small values mean the NHPP
// describes the event series well. The conventional 5% critical value for
// moderate n is about 0.22.
func (p PowerLaw) MilHdbk189GoodnessOfFit(eventTimes []float64) (float64, error) {
	n := len(eventTimes)
	if n < 3 {
		return math.NaN(), fmt.Errorf("trend: %d events: %w", n, ErrInsufficientData)
	}
	// Unbiased beta for the GoF statistic.
	betaBar := p.Beta * float64(n-1) / float64(n)
	stat := 1.0 / (12 * float64(n))
	for i, t := range eventTimes {
		z := math.Pow(t/p.Horizon, betaBar)
		d := z - (2*float64(i+1)-1)/(2*float64(n))
		stat += d * d
	}
	return stat, nil
}
