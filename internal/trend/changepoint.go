package trend

import (
	"fmt"
	"math"
)

// ChangePoint is a detected shift in a Poisson event rate.
type ChangePoint struct {
	// At is the estimated change time (same unit as the event times).
	At float64
	// RateBefore and RateAfter are the MLE event rates on each side.
	RateBefore, RateAfter float64
	// LogLikRatio is the log-likelihood improvement of the two-rate model
	// over a single constant rate. Larger means a sharper change;
	// as a rule of thumb values above ~5 are decisive for real data.
	LogLikRatio float64
}

// FindChangePoint locates the single most likely rate-change time of an
// event series on [0, horizon], by maximizing the Poisson-process
// likelihood over all candidate split points (evaluated at event times).
// It quantifies lifecycle statements like the paper's "the fraction of
// failures with unknown root cause dropped within 2 years": the returned
// At estimates when a system's failure behaviour actually shifted.
func FindChangePoint(eventTimes []float64, horizon float64) (ChangePoint, error) {
	n := len(eventTimes)
	if n < 8 {
		return ChangePoint{}, fmt.Errorf("trend: %d events, need >= 8: %w", n, ErrInsufficientData)
	}
	if horizon <= 0 {
		return ChangePoint{}, fmt.Errorf("trend: horizon %g invalid", horizon)
	}
	prev := 0.0
	for i, t := range eventTimes {
		if t < 0 || t > horizon {
			return ChangePoint{}, fmt.Errorf("trend: event %d at %g outside [0, %g]", i, t, horizon)
		}
		if t < prev {
			return ChangePoint{}, fmt.Errorf("trend: event %d out of order", i)
		}
		prev = t
	}
	// Null model: constant rate n/horizon.
	nullLL := poissonLL(float64(n), horizon)
	best := ChangePoint{LogLikRatio: math.Inf(-1)}
	// Candidate split after each event k (keeping >= 3 events and some
	// exposure on each side to avoid degenerate rates).
	for k := 3; k <= n-3; k++ {
		split := eventTimes[k-1]
		if split <= 0 || split >= horizon {
			continue
		}
		ll := poissonLL(float64(k), split) + poissonLL(float64(n-k), horizon-split)
		ratio := ll - nullLL
		if ratio > best.LogLikRatio {
			best = ChangePoint{
				At:          split,
				RateBefore:  float64(k) / split,
				RateAfter:   float64(n-k) / (horizon - split),
				LogLikRatio: ratio,
			}
		}
	}
	if math.IsInf(best.LogLikRatio, -1) {
		return ChangePoint{}, fmt.Errorf("trend: no valid split point: %w", ErrInsufficientData)
	}
	return best, nil
}

// poissonLL is the maximized Poisson-process log-likelihood of k events in
// exposure T (rate fixed at its MLE k/T), dropping the k! term that cancels
// in ratios.
func poissonLL(k, t float64) float64 {
	if k == 0 || t <= 0 {
		return 0
	}
	return k*math.Log(k/t) - k
}
