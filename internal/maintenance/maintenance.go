// Package maintenance analyzes age-replacement (preventive maintenance)
// policies under a fitted lifetime distribution. It exists because the
// paper's central statistical finding — time between failures has a
// DECREASING hazard rate (Weibull shape 0.7–0.8) — has a sharp operational
// consequence that classic renewal theory makes precise: age-based
// preventive replacement only pays off when the hazard rate increases.
// Under the paper's fitted models, preventively cycling nodes would
// *increase* the failure-related cost rate.
package maintenance

import (
	"errors"
	"fmt"
	"math"

	"hpcfail/internal/dist"
	"hpcfail/internal/mathx"
)

// ErrBadInput is returned for invalid costs or ages.
var ErrBadInput = errors.New("maintenance: invalid input")

// Policy is an age-replacement policy: replace preventively at age T (cost
// CostPreventive) or on failure, whichever comes first (cost CostFailure).
type Policy struct {
	// Lifetime is the fitted time-to-failure distribution.
	Lifetime dist.Continuous
	// CostFailure is the cost of a failure-triggered replacement,
	// including collateral damage (lost work, emergency repair).
	CostFailure float64
	// CostPreventive is the cost of a planned replacement.
	CostPreventive float64
}

// Validate checks the policy parameters. Preventive replacement can only
// be rational when planned work is cheaper than failure.
func (p Policy) Validate() error {
	if p.Lifetime == nil {
		return fmt.Errorf("maintenance: nil lifetime: %w", ErrBadInput)
	}
	if p.CostFailure <= 0 || p.CostPreventive <= 0 {
		return fmt.Errorf("maintenance: costs must be positive: %w", ErrBadInput)
	}
	if p.CostPreventive >= p.CostFailure {
		return fmt.Errorf("maintenance: preventive cost %g >= failure cost %g: %w",
			p.CostPreventive, p.CostFailure, ErrBadInput)
	}
	return nil
}

// CostRate returns the long-run cost per unit time of replacing at age T:
//
//	g(T) = (Cf·F(T) + Cp·S(T)) / ∫₀ᵀ S(t) dt
//
// by the renewal-reward theorem, where S = 1 − F is the survival function.
func (p Policy) CostRate(ageT float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return math.NaN(), err
	}
	if !(ageT > 0) || math.IsInf(ageT, 0) || math.IsNaN(ageT) {
		return math.NaN(), fmt.Errorf("maintenance: age %g: %w", ageT, ErrBadInput)
	}
	surv := func(t float64) float64 { return 1 - p.Lifetime.CDF(t) }
	expected, err := mathx.Simpson(surv, 0, ageT, 2000)
	if err != nil {
		return math.NaN(), fmt.Errorf("maintenance: integrate survival: %w", err)
	}
	if expected <= 0 {
		return math.Inf(1), nil
	}
	f := p.Lifetime.CDF(ageT)
	return (p.CostFailure*f + p.CostPreventive*(1-f)) / expected, nil
}

// RunToFailureRate returns the cost rate of never replacing preventively:
// Cf divided by the mean lifetime.
func (p Policy) RunToFailureRate() (float64, error) {
	if err := p.Validate(); err != nil {
		return math.NaN(), err
	}
	mean := p.Lifetime.Mean()
	if !(mean > 0) || math.IsInf(mean, 1) {
		return math.NaN(), fmt.Errorf("maintenance: lifetime mean %g: %w", mean, ErrBadInput)
	}
	return p.CostFailure / mean, nil
}

// Optimum is the result of optimizing the replacement age.
type Optimum struct {
	// Worthwhile reports whether some finite replacement age beats
	// run-to-failure. Under a decreasing hazard rate it is false.
	Worthwhile bool
	// AgeT is the optimal replacement age (only meaningful when
	// Worthwhile).
	AgeT float64
	// CostRate is the cost rate at the optimum (or the run-to-failure
	// rate when not worthwhile).
	CostRate float64
	// RunToFailure is the baseline cost rate for comparison.
	RunToFailure float64
}

// Optimize searches replacement ages in [lo, hi] for the minimum cost rate
// and compares it against run-to-failure. A finite optimum strictly below
// run-to-failure (by more than 0.1%) marks the policy worthwhile.
func (p Policy) Optimize(lo, hi float64) (Optimum, error) {
	if err := p.Validate(); err != nil {
		return Optimum{}, err
	}
	if !(lo > 0) || !(hi > lo) {
		return Optimum{}, fmt.Errorf("maintenance: range [%g, %g]: %w", lo, hi, ErrBadInput)
	}
	baseline, err := p.RunToFailureRate()
	if err != nil {
		return Optimum{}, err
	}
	objective := func(t float64) float64 {
		rate, err := p.CostRate(t)
		if err != nil {
			return math.Inf(1)
		}
		return rate
	}
	best, err := mathx.GoldenSection(objective, lo, hi, (hi-lo)*1e-5)
	if err != nil {
		return Optimum{}, fmt.Errorf("maintenance: %w", err)
	}
	bestRate := objective(best)
	opt := Optimum{RunToFailure: baseline}
	// The cost rate converges to the run-to-failure rate as T→∞; an
	// interior minimum at the search boundary means no real optimum.
	interior := best < hi*0.99
	if interior && bestRate < baseline*0.999 {
		opt.Worthwhile = true
		opt.AgeT = best
		opt.CostRate = bestRate
	} else {
		opt.CostRate = baseline
	}
	return opt, nil
}
