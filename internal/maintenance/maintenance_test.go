package maintenance

import (
	"errors"
	"math"
	"testing"

	"hpcfail/internal/dist"
)

func policy(t *testing.T, shape float64) Policy {
	t.Helper()
	wb, err := dist.NewWeibull(shape, 100)
	if err != nil {
		t.Fatal(err)
	}
	return Policy{Lifetime: wb, CostFailure: 10, CostPreventive: 1}
}

func TestValidate(t *testing.T) {
	good := policy(t, 2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Lifetime = nil
	if err := bad.Validate(); !errors.Is(err, ErrBadInput) {
		t.Error("nil lifetime")
	}
	bad = good
	bad.CostFailure = 0
	if err := bad.Validate(); !errors.Is(err, ErrBadInput) {
		t.Error("zero failure cost")
	}
	bad = good
	bad.CostPreventive = 20
	if err := bad.Validate(); !errors.Is(err, ErrBadInput) {
		t.Error("preventive >= failure cost")
	}
}

func TestCostRateLimits(t *testing.T) {
	p := policy(t, 2)
	// As T→∞ the cost rate approaches run-to-failure.
	baseline, err := p.RunToFailureRate()
	if err != nil {
		t.Fatal(err)
	}
	atHuge, err := p.CostRate(2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(atHuge-baseline)/baseline > 0.02 {
		t.Fatalf("cost rate at huge T = %g, baseline %g", atHuge, baseline)
	}
	// Tiny T: dominated by preventive cost over tiny cycles -> enormous.
	atTiny, err := p.CostRate(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if atTiny < 50*baseline {
		t.Fatalf("cost rate at tiny T = %g should be enormous", atTiny)
	}
	if _, err := p.CostRate(0); !errors.Is(err, ErrBadInput) {
		t.Error("zero age")
	}
	if _, err := p.CostRate(math.Inf(1)); !errors.Is(err, ErrBadInput) {
		t.Error("infinite age")
	}
}

func TestIncreasingHazardMakesPMWorthwhile(t *testing.T) {
	// Weibull shape 2 (wear-out): age replacement should pay off with a
	// finite optimal age and a clearly lower cost rate.
	p := policy(t, 2)
	opt, err := p.Optimize(1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Worthwhile {
		t.Fatalf("PM should be worthwhile under increasing hazard: %+v", opt)
	}
	if opt.CostRate >= opt.RunToFailure {
		t.Fatalf("optimal rate %g should beat baseline %g", opt.CostRate, opt.RunToFailure)
	}
	// The classic analytic check for Weibull shape 2, Cf/Cp = 10:
	// optimum is well below the mean lifetime.
	if opt.AgeT >= 100 {
		t.Fatalf("optimal age %g should be well below the scale", opt.AgeT)
	}
}

func TestDecreasingHazardMakesPMPointless(t *testing.T) {
	// The paper's case: Weibull shape 0.7. A freshly replaced component is
	// MORE failure-prone than a seasoned one, so preventive replacement
	// can only hurt.
	p := policy(t, 0.7)
	opt, err := p.Optimize(1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Worthwhile {
		t.Fatalf("PM should NOT be worthwhile under decreasing hazard: %+v", opt)
	}
	if opt.CostRate != opt.RunToFailure {
		t.Fatalf("cost rate should fall back to run-to-failure: %+v", opt)
	}
	// And every finite age is strictly worse than the baseline.
	for _, age := range []float64{10, 50, 100, 500} {
		rate, err := p.CostRate(age)
		if err != nil {
			t.Fatal(err)
		}
		if rate <= opt.RunToFailure {
			t.Fatalf("cost rate at T=%g (%g) should exceed baseline %g",
				age, rate, opt.RunToFailure)
		}
	}
}

func TestExponentialIndifference(t *testing.T) {
	// Memoryless lifetimes: replacement age is irrelevant asymptotically;
	// PM never strictly helps.
	exp, err := dist.NewExponential(0.01)
	if err != nil {
		t.Fatal(err)
	}
	p := Policy{Lifetime: exp, CostFailure: 10, CostPreventive: 1}
	opt, err := p.Optimize(1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Worthwhile {
		t.Fatalf("PM should not help under memoryless failures: %+v", opt)
	}
}

func TestOptimizeValidation(t *testing.T) {
	p := policy(t, 2)
	if _, err := p.Optimize(-1, 10); !errors.Is(err, ErrBadInput) {
		t.Error("negative lo")
	}
	if _, err := p.Optimize(10, 5); !errors.Is(err, ErrBadInput) {
		t.Error("inverted range")
	}
	bad := p
	bad.Lifetime = nil
	if _, err := bad.Optimize(1, 10); !errors.Is(err, ErrBadInput) {
		t.Error("invalid policy")
	}
}

func TestRunToFailureInfiniteMean(t *testing.T) {
	pareto, err := dist.NewPareto(1, 0.9) // infinite mean
	if err != nil {
		t.Fatal(err)
	}
	p := Policy{Lifetime: pareto, CostFailure: 10, CostPreventive: 1}
	if _, err := p.RunToFailureRate(); !errors.Is(err, ErrBadInput) {
		t.Error("infinite mean should be rejected")
	}
}
