package tracefmt

import (
	"fmt"
	"io"
	"os"

	"hpcfail/internal/failures"
)

// File is a binary trace opened for random access: the footer's block
// index and complete dictionaries are loaded once, after which scans
// seek straight to the blocks a time range can touch and skip the rest
// unread. Any io.ReaderAt works — an *os.File, an mmap'd byte slice
// wrapped in bytes.NewReader, an in-memory buffer.
type File struct {
	ra      io.ReaderAt
	closer  io.Closer
	blocks  []BlockInfo
	records uint64
	hwDict  []failures.HWType
	detDict []string
}

// OpenFile opens a trace file on disk; Close releases it.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	tf, err := NewFile(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	tf.closer = f
	return tf, nil
}

// NewFile opens a trace held by any random-access reader of the given
// size, verifying the header, trailer and footer frame before returning.
func NewFile(ra io.ReaderAt, size int64) (*File, error) {
	var hdr [headerSize]byte
	if size < int64(headerSize+trailerSize) {
		return nil, fmt.Errorf("%w: %d bytes is too short for a trace file", ErrTruncated, size)
	}
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("tracefmt: read header: %w", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadMagic, hdr[:len(magic)])
	}
	if v := le.Uint16(hdr[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, reader supports %d", ErrVersion, v, Version)
	}
	var tr [trailerSize]byte
	if _, err := ra.ReadAt(tr[:], size-int64(trailerSize)); err != nil {
		return nil, fmt.Errorf("tracefmt: read trailer: %w", err)
	}
	if string(tr[8:]) != trailerMagic {
		return nil, fmt.Errorf("%w: bad trailer magic %q (file truncated or not Closed)", ErrBadMagic, tr[8:])
	}
	footOff := int64(le.Uint64(tr[:]))
	if footOff < int64(headerSize) || footOff >= size-int64(trailerSize) {
		return nil, fmt.Errorf("%w: footer offset %d outside file", ErrFormat, footOff)
	}
	kind, payload, err := readFrameAt(ra, footOff, nil)
	if err != nil {
		return nil, err
	}
	if kind != frameFooter {
		return nil, fmt.Errorf("%w: trailer points at frame kind %d, want footer", ErrFormat, kind)
	}
	f := &File{ra: ra}
	if err := f.parseFooter(payload, footOff); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *File) parseFooter(p []byte, footOff int64) error {
	fr := fieldReader{buf: p}
	f.records = fr.u64("record total")
	nBlocks := int(fr.u32("block count"))
	if nBlocks < 0 || nBlocks > maxFramePayload/28 {
		return fmt.Errorf("%w: footer block count %d", ErrFormat, nBlocks)
	}
	var sum uint64
	// Block offsets must be strictly increasing and non-overlapping:
	// each block's frame needs at least its header, the fixed prefix,
	// the two dictionary-delta counts and its columns before the next
	// can begin. A hostile index that aims two entries at the same
	// bytes, or past the footer, is rejected here — before ScanParallel
	// hands the entries to concurrent workers to dereference.
	minOff := int64(headerSize)
	for i := 0; i < nBlocks && fr.err == nil; i++ {
		b := BlockInfo{
			Offset:   int64(fr.u64("block offset")),
			Records:  int(fr.u32("block records")),
			MinStart: fr.i64("block min start"),
			MaxStart: fr.i64("block max start"),
		}
		if b.Records <= 0 || b.Records > maxFramePayload/recordWidth {
			return fmt.Errorf("%w: footer block %d: %d records", ErrFormat, i, b.Records)
		}
		if b.Offset < minOff || b.Offset >= footOff {
			return fmt.Errorf("%w: footer block %d: offset %d overlaps block %d or the footer", ErrFormat, i, b.Offset, i-1)
		}
		minOff = b.Offset + int64(frameSize+blockPrefixSize+2+4) + int64(b.Records)*recordWidth
		sum += uint64(b.Records)
		f.blocks = append(f.blocks, b)
	}
	nHW := int(fr.u16("hw dict count"))
	for i := 0; i < nHW && fr.err == nil; i++ {
		l := int(fr.u16("hw label length"))
		f.hwDict = append(f.hwDict, failures.HWType(fr.bytes(l, "hw label")))
	}
	nDet := int(fr.u32("detail dict count"))
	if nDet > maxDetailDict {
		return fmt.Errorf("%w: detail dictionary count %d", ErrFormat, nDet)
	}
	for i := 0; i < nDet && fr.err == nil; i++ {
		l := int(fr.u16("detail label length"))
		f.detDict = append(f.detDict, string(fr.bytes(l, "detail label")))
	}
	if fr.err != nil {
		return fr.err
	}
	if fr.off != len(p) {
		return fmt.Errorf("%w: %d trailing footer bytes", ErrFormat, len(p)-fr.off)
	}
	if sum != f.records {
		return fmt.Errorf("%w: footer total %d, blocks sum to %d", ErrFormat, f.records, sum)
	}
	return nil
}

// readFrameAt reads and CRC-verifies the frame at a file offset.
func readFrameAt(ra io.ReaderAt, off int64, buf []byte) (byte, []byte, error) {
	var hdr [frameSize]byte
	if _, err := ra.ReadAt(hdr[:], off); err != nil {
		return 0, nil, fmt.Errorf("%w: frame at %d: %v", ErrTruncated, off, err)
	}
	n := int(le.Uint32(hdr[1:]))
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: frame payload %d bytes exceeds the %d cap", ErrFormat, n, maxFramePayload)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	p := buf[:n]
	if _, err := ra.ReadAt(p, off+int64(frameSize)); err != nil {
		return 0, nil, fmt.Errorf("%w: frame body at %d: %v", ErrTruncated, off, err)
	}
	if got, want := crc32Checksum(p), le.Uint32(hdr[5:]); got != want {
		return 0, nil, fmt.Errorf("%w: payload CRC %08x, frame says %08x", ErrChecksum, got, want)
	}
	return hdr[0], p, nil
}

// Records returns the total number of records in the trace.
func (f *File) Records() int { return int(f.records) }

// Blocks returns the footer's block index (shared slice; do not mutate).
func (f *File) Blocks() []BlockInfo { return f.blocks }

// HWTypes returns the hardware-label dictionary in first-appearance
// order (shared slice; do not mutate).
func (f *File) HWTypes() []failures.HWType { return f.hwDict }

// Close releases the underlying file when the File owns one (OpenFile);
// for a caller-supplied ReaderAt it is a no-op.
func (f *File) Close() error {
	if f.closer != nil {
		return f.closer.Close()
	}
	return nil
}

// Scan returns a Scanner over the records in the options' time window.
// Blocks whose footer index proves them disjoint from the window are
// never read from the underlying reader — a narrow window over a long
// trace touches O(matching blocks), not O(file).
func (f *File) Scan(opts ScanOptions) *Scanner {
	s := newScanner(opts, true)
	s.hwDict = f.hwDict
	s.detDict = f.detDict
	i := 0
	var buf []byte
	s.next = func() ([]byte, error) {
		for i < len(f.blocks) {
			b := f.blocks[i]
			i++
			if !b.overlaps(s.fromN, s.toInc) {
				continue
			}
			kind, p, err := readFrameAt(f.ra, b.Offset, buf)
			if err != nil {
				return nil, err
			}
			buf = p[:0]
			if kind != frameBlock {
				return nil, fmt.Errorf("%w: index points at frame kind %d, want block", ErrFormat, kind)
			}
			return p, nil
		}
		return nil, nil
	}
	return s
}

// decodeBlockAt reads, verifies and decodes one indexed block, appending
// its in-window records to dst. frameBuf is the caller's reusable frame
// buffer; the (possibly regrown) buffer is returned for the next call.
// The decoded record count must match the footer index — a block that
// disagrees with its own index entry is malformed, whichever is lying.
func (f *File) decodeBlockAt(b BlockInfo, frameBuf []byte, fromN, toInc int64, dst []failures.Record) ([]failures.Record, []byte, error) {
	kind, p, err := readFrameAt(f.ra, b.Offset, frameBuf)
	if err != nil {
		return dst, frameBuf, err
	}
	if kind != frameBlock {
		return dst, p, fmt.Errorf("%w: index points at frame kind %d, want block", ErrFormat, kind)
	}
	n, _, _, colOff, err := parseBlock(p, nil, nil, false)
	if err != nil {
		return dst, p, err
	}
	if n != b.Records {
		return dst, p, fmt.Errorf("%w: block at %d holds %d records, index says %d", ErrFormat, b.Offset, n, b.Records)
	}
	dst, err = decodeColumns(p, colOff, n, 0, f.hwDict, f.detDict, fromN, toInc, dst)
	return dst, p, err
}
