package tracefmt

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"hpcfail/internal/failures"
)

// synthRecords builds n records with varied labels and non-monotonic
// times so dictionary growth and min/max indexing are both exercised.
func synthRecords(n int) []failures.Record {
	base := time.Date(1996, 8, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]failures.Record, n)
	for i := range recs {
		// Jump around in time so blocks get distinct, unsorted windows.
		start := base.Add(time.Duration((i*7919)%(n+1)) * time.Hour).Add(time.Duration(i%997) * time.Nanosecond)
		recs[i] = failures.Record{
			System:   i % 23,
			Node:     i % 4096,
			HW:       failures.HWType(fmt.Sprintf("hw-%d", i%13)),
			Workload: failures.Workload(1 + i%3),
			Cause:    failures.RootCause(1 + i%6),
			Detail:   fmt.Sprintf("detail-%d", i%257),
			Start:    start,
			End:      start.Add(time.Duration(1+i%300) * time.Minute),
		}
	}
	return recs
}

func encode(t testing.TB, recs []failures.Record, opts WriterOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write record %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := w.Count(); got != len(recs) {
		t.Fatalf("Count() = %d, want %d", got, len(recs))
	}
	return buf.Bytes()
}

func scanAll(t testing.TB, s *Scanner) []failures.Record {
	t.Helper()
	var out []failures.Record
	for s.Scan() {
		out = append(out, s.Record())
	}
	if err := s.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	for _, blockN := range []int{0, 1, 2, 7, 1000} {
		t.Run(fmt.Sprintf("block=%d", blockN), func(t *testing.T) {
			recs := synthRecords(1203)
			raw := encode(t, recs, WriterOptions{BlockRecords: blockN})

			s, err := NewScanner(bytes.NewReader(raw), ScanOptions{})
			if err != nil {
				t.Fatalf("NewScanner: %v", err)
			}
			got := scanAll(t, s)
			if len(got) != len(recs) {
				t.Fatalf("stream scan yielded %d records, want %d", len(got), len(recs))
			}
			for i := range recs {
				if !got[i].Start.Equal(recs[i].Start) || !got[i].End.Equal(recs[i].End) {
					t.Fatalf("record %d times: got [%v, %v], want [%v, %v]",
						i, got[i].Start, got[i].End, recs[i].Start, recs[i].End)
				}
				got[i].Start, got[i].End = recs[i].Start, recs[i].End
				if got[i] != recs[i] {
					t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
				}
			}
			if s.Scanned() != len(recs) {
				t.Fatalf("Scanned() = %d, want %d", s.Scanned(), len(recs))
			}

			f, err := NewFile(bytes.NewReader(raw), int64(len(raw)))
			if err != nil {
				t.Fatalf("NewFile: %v", err)
			}
			if f.Records() != len(recs) {
				t.Fatalf("File.Records() = %d, want %d", f.Records(), len(recs))
			}
			got2 := scanAll(t, f.Scan(ScanOptions{}))
			if len(got2) != len(recs) {
				t.Fatalf("file scan yielded %d records, want %d", len(got2), len(recs))
			}
			for i := range recs {
				if got2[i].Detail != recs[i].Detail || !got2[i].Start.Equal(recs[i].Start) {
					t.Fatalf("file scan record %d mismatch", i)
				}
			}
		})
	}
}

func TestEmptyTrace(t *testing.T) {
	raw := encode(t, nil, WriterOptions{})
	s, err := NewScanner(bytes.NewReader(raw), ScanOptions{})
	if err != nil {
		t.Fatalf("NewScanner: %v", err)
	}
	if got := scanAll(t, s); len(got) != 0 {
		t.Fatalf("empty trace yielded %d records", len(got))
	}
	f, err := NewFile(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	if f.Records() != 0 || len(f.Blocks()) != 0 {
		t.Fatalf("empty trace: Records=%d Blocks=%d", f.Records(), len(f.Blocks()))
	}
	if got := scanAll(t, f.Scan(ScanOptions{})); len(got) != 0 {
		t.Fatalf("empty file scan yielded %d records", len(got))
	}
}

func TestBlockIndex(t *testing.T) {
	recs := synthRecords(500)
	raw := encode(t, recs, WriterOptions{BlockRecords: 64})
	f, err := NewFile(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	blocks := f.Blocks()
	if want := (500 + 63) / 64; len(blocks) != want {
		t.Fatalf("got %d blocks, want %d", len(blocks), want)
	}
	total := 0
	for bi, b := range blocks {
		lo, hi := bi*64, bi*64+b.Records
		min, max := recs[lo].Start.UnixNano(), recs[lo].Start.UnixNano()
		for _, r := range recs[lo:hi] {
			if n := r.Start.UnixNano(); n < min {
				min = n
			} else if n > max {
				max = n
			}
		}
		if b.MinStart != min || b.MaxStart != max {
			t.Fatalf("block %d index [%d, %d], want [%d, %d]", bi, b.MinStart, b.MaxStart, min, max)
		}
		total += b.Records
	}
	if total != len(recs) {
		t.Fatalf("blocks sum to %d records, want %d", total, len(recs))
	}
}

// countingReaderAt counts ReadAt calls so tests can prove block skipping
// touches the underlying file only for blocks inside the window.
type countingReaderAt struct {
	r     *bytes.Reader
	reads int
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	c.reads++
	return c.r.ReadAt(p, off)
}

func TestTimeRangeScan(t *testing.T) {
	// Mostly time-ordered with local jitter, like a real merged trace:
	// blocks get tight, distinct time windows, so some fall wholly
	// outside the scan range and must be skipped.
	recs := synthRecords(2000)
	base := time.Date(1996, 8, 1, 0, 0, 0, 0, time.UTC)
	for i := range recs {
		recs[i].Start = base.Add(time.Duration(i)*time.Hour - time.Duration(i%7)*time.Minute)
		recs[i].End = recs[i].Start.Add(time.Duration(1+i%90) * time.Minute)
	}
	raw := encode(t, recs, WriterOptions{BlockRecords: 50})

	from := time.Date(1996, 8, 20, 0, 0, 0, 0, time.UTC)
	to := time.Date(1996, 9, 10, 0, 0, 0, 0, time.UTC)
	var want []failures.Record
	for _, r := range recs {
		if !r.Start.Before(from) && r.Start.Before(to) {
			want = append(want, r)
		}
	}
	if len(want) == 0 || len(want) == len(recs) {
		t.Fatalf("degenerate window: %d of %d records", len(want), len(recs))
	}

	check := func(name string, got []failures.Record) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d records in window, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i].Detail != want[i].Detail || !got[i].Start.Equal(want[i].Start) {
				t.Fatalf("%s: record %d mismatch: got %v, want %v", name, i, got[i].Start, want[i].Start)
			}
		}
	}

	s, err := NewScanner(bytes.NewReader(raw), ScanOptions{From: from, To: to})
	if err != nil {
		t.Fatalf("NewScanner: %v", err)
	}
	check("stream", scanAll(t, s))

	cra := &countingReaderAt{r: bytes.NewReader(raw)}
	f, err := NewFile(cra, int64(len(raw)))
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	overlapping := 0
	fromN, toInc := from.UnixNano(), to.UnixNano()-1
	for _, b := range f.Blocks() {
		if b.overlaps(fromN, toInc) {
			overlapping++
		}
	}
	if overlapping == len(f.Blocks()) {
		t.Fatalf("degenerate: every block overlaps the window")
	}
	openReads := cra.reads
	check("file", scanAll(t, f.Scan(ScanOptions{From: from, To: to})))
	scanReads := cra.reads - openReads
	// Two ReadAt calls per block frame (header + body); skipped blocks
	// must cost zero reads.
	if maxReads := 2 * overlapping; scanReads > maxReads {
		t.Fatalf("range scan issued %d reads for %d overlapping blocks (max %d): skipping is broken",
			scanReads, overlapping, maxReads)
	}

	// Half-open semantics: From alone, To alone.
	s2, _ := NewScanner(bytes.NewReader(raw), ScanOptions{From: from})
	nFrom := len(scanAll(t, s2))
	s3, _ := NewScanner(bytes.NewReader(raw), ScanOptions{To: from})
	nTo := len(scanAll(t, s3))
	if nFrom+nTo != len(recs) {
		t.Fatalf("[From,∞) has %d + (-∞,From) has %d, want total %d", nFrom, nTo, len(recs))
	}

	// A record starting exactly at From is included; exactly at To is not.
	exact := recs[0]
	exact.Start = from
	exact.End = from.Add(time.Hour)
	raw2 := encode(t, []failures.Record{exact}, WriterOptions{})
	s4, _ := NewScanner(bytes.NewReader(raw2), ScanOptions{From: from, To: from.Add(1)})
	if got := scanAll(t, s4); len(got) != 1 {
		t.Fatalf("record starting exactly at From dropped")
	}
	s5, _ := NewScanner(bytes.NewReader(raw2), ScanOptions{To: from})
	if got := scanAll(t, s5); len(got) != 0 {
		t.Fatalf("record starting exactly at To included; window must be half-open")
	}
}

func TestCorruptionDetection(t *testing.T) {
	recs := synthRecords(300)
	raw := encode(t, recs, WriterOptions{BlockRecords: 100})

	scanErr := func(b []byte) error {
		s, err := NewScanner(bytes.NewReader(b), ScanOptions{})
		if err != nil {
			return err
		}
		for s.Scan() {
		}
		return s.Err()
	}

	t.Run("bit flip", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[len(bad)/2] ^= 0x40
		err := scanErr(bad)
		if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrFormat) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("corrupted byte not detected: %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if err := scanErr(raw[:len(raw)-trailerSize-3]); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("truncation not detected: %v", err)
		}
		if _, err := NewFile(bytes.NewReader(raw[:len(raw)-2]), int64(len(raw)-2)); err == nil {
			t.Fatalf("NewFile accepted a truncated trailer")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] = 'X'
		if err := scanErr(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
		if _, err := NewFile(bytes.NewReader(bad), int64(len(bad))); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("NewFile: want ErrBadMagic, got %v", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		le.PutUint16(bad[len(magic):], Version+1)
		if err := scanErr(bad); !errors.Is(err, ErrVersion) {
			t.Fatalf("want ErrVersion, got %v", err)
		}
		if _, err := NewFile(bytes.NewReader(bad), int64(len(bad))); !errors.Is(err, ErrVersion) {
			t.Fatalf("NewFile: want ErrVersion, got %v", err)
		}
	})
	t.Run("data after trailer", func(t *testing.T) {
		bad := append(append([]byte(nil), raw...), 0)
		if err := scanErr(bad); !errors.Is(err, ErrFormat) {
			t.Fatalf("want ErrFormat, got %v", err)
		}
	})
}

func TestWriterRejectsUnrepresentable(t *testing.T) {
	r0 := synthRecords(1)[0]
	cases := []struct {
		name string
		mut  func(*failures.Record)
	}{
		{"start beyond epoch range", func(r *failures.Record) { r.Start = time.Date(2500, 1, 1, 0, 0, 0, 0, time.UTC) }},
		{"end beyond epoch range", func(r *failures.Record) { r.End = time.Date(2500, 1, 1, 0, 0, 0, 0, time.UTC) }},
		{"negative system", func(r *failures.Record) { r.System = -1 }},
		{"huge node", func(r *failures.Record) { r.Node = 1 << 40 }},
		{"workload out of byte", func(r *failures.Record) { r.Workload = 300 }},
		{"cause out of byte", func(r *failures.Record) { r.Cause = -2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			w, err := NewWriter(&buf, WriterOptions{})
			if err != nil {
				t.Fatal(err)
			}
			r := r0
			tc.mut(&r)
			if err := w.Write(r); err == nil {
				t.Fatalf("Write accepted unrepresentable record %+v", r)
			}
			if err := w.Close(); err == nil {
				t.Fatalf("Close succeeded on a poisoned writer")
			}
		})
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Write(synthRecords(1)[0]); err == nil {
		t.Fatalf("Write after Close succeeded")
	}
}

func TestOpenFileRoundTrip(t *testing.T) {
	recs := synthRecords(100)
	raw := encode(t, recs, WriterOptions{BlockRecords: 32})
	path := t.TempDir() + "/trace.bin"
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	if got := scanAll(t, f.Scan(ScanOptions{})); len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	if len(f.HWTypes()) == 0 {
		t.Fatalf("HWTypes dictionary empty")
	}
}

// TestScanSteadyStateAllocs pins the zero-copy claim: once the payload
// buffer and dictionaries are warm, Scan allocates nothing per record.
func TestScanSteadyStateAllocs(t *testing.T) {
	recs := synthRecords(60000)
	raw := encode(t, recs, WriterOptions{BlockRecords: 4096})
	s, err := NewScanner(bytes.NewReader(raw), ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up past the first blocks so the frame buffer has grown and
	// every dictionary entry has been seen.
	for i := 0; i < 10000; i++ {
		if !s.Scan() {
			t.Fatalf("trace exhausted during warmup at %d", i)
		}
	}
	var sink failures.Record
	avg := testing.AllocsPerRun(40, func() {
		for i := 0; i < 1000; i++ {
			if !s.Scan() {
				t.Fatalf("trace exhausted mid-measurement")
			}
			sink = s.Record()
		}
	})
	_ = sink
	if perRecord := avg / 1000; perRecord > 0.001 {
		t.Fatalf("steady-state Scan allocates %.4f allocs/record, want 0", perRecord)
	}
}

var errShortWrite = errors.New("synthetic write failure")

type failingWriter struct{ after int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errShortWrite
	}
	f.after--
	return len(p), nil
}

func TestWriterPropagatesIOErrors(t *testing.T) {
	w, err := NewWriter(&failingWriter{after: 1}, WriterOptions{BlockRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs := synthRecords(64)
	var sawErr error
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		sawErr = w.Close()
	}
	if !errors.Is(sawErr, errShortWrite) {
		t.Fatalf("write error not propagated: %v", sawErr)
	}
}

// Ensure io.Reader streaming works through a pipe-like reader that
// returns short reads (exercises io.ReadFull paths).
type oneByteReader struct{ r io.Reader }

func (o oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestScannerShortReads(t *testing.T) {
	recs := synthRecords(50)
	raw := encode(t, recs, WriterOptions{BlockRecords: 8})
	s, err := NewScanner(oneByteReader{bytes.NewReader(raw)}, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, s); len(got) != len(recs) {
		t.Fatalf("got %d records through short reads, want %d", len(got), len(recs))
	}
}
