package tracefmt

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"hpcfail/internal/failures"
)

// recordsFromBytes derives a record stream deterministically from fuzz
// input, 16 bytes per record, covering varied labels, systems, nodes and
// non-monotonic sub-second timestamps. All derived records are within the
// format's representable ranges, so encoding must always succeed.
func recordsFromBytes(data []byte) []failures.Record {
	const stride = 16
	n := len(data) / stride
	if n > 512 {
		n = 512
	}
	base := time.Date(2001, 3, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]failures.Record, n)
	for i := range recs {
		b := data[i*stride : (i+1)*stride]
		start := base.
			Add(time.Duration(int64(b[0])|int64(b[1])<<8|int64(b[2])<<16) * time.Second).
			Add(time.Duration(b[3]) * time.Nanosecond)
		recs[i] = failures.Record{
			System:   int(b[4]),
			Node:     int(b[5]) | int(b[6])<<8,
			HW:       failures.HWType(fmt.Sprintf("hw-%d", b[7]%31)),
			Workload: failures.Workload(b[8]),
			Cause:    failures.RootCause(b[9]),
			Detail:   fmt.Sprintf("detail-%d", int(b[10])|int(b[11])<<8),
			Start:    start,
			End:      start.Add(time.Duration(1+int(b[12])) * time.Minute),
		}
	}
	return recs
}

// FuzzTraceRoundTrip drives the format from both ends. The fuzz input is
// first decoded into a record stream that must survive an encode/decode
// round trip field-exactly at a fuzzed block size; the same raw bytes are
// then scanned directly as a (usually corrupt) trace, which must fail
// with an error — never a panic, hang, or fabricated records.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte("HPCTRC"), uint8(1))
	f.Add(bytes.Repeat([]byte{0x5a}, 96), uint8(7))
	f.Add(encode(f, synthRecords(64), WriterOptions{BlockRecords: 8}), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, blockN uint8) {
		recs := recordsFromBytes(data)
		raw := encode(t, recs, WriterOptions{BlockRecords: int(blockN) % 33})
		s, err := NewScanner(bytes.NewReader(raw), ScanOptions{})
		if err != nil {
			t.Fatalf("NewScanner on fresh encoding: %v", err)
		}
		got := scanAll(t, s)
		if len(got) != len(recs) {
			t.Fatalf("round trip yielded %d records, want %d", len(got), len(recs))
		}
		for i := range recs {
			if !got[i].Start.Equal(recs[i].Start) || !got[i].End.Equal(recs[i].End) {
				t.Fatalf("record %d times: got [%v, %v], want [%v, %v]",
					i, got[i].Start, got[i].End, recs[i].Start, recs[i].End)
			}
			got[i].Start, got[i].End = recs[i].Start, recs[i].End
			if got[i] != recs[i] {
				t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
			}
		}

		// The parallel scanners must reproduce the sequential scan of the
		// fresh encoding exactly, at a worker count above one.
		pf, err := NewFile(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			t.Fatalf("NewFile on fresh encoding: %v", err)
		}
		ps := pf.ScanParallel(ScanOptions{}, 3)
		var pgot []failures.Record
		for ps.Scan() {
			pgot = append(pgot, ps.Record())
		}
		if err := ps.Err(); err != nil {
			t.Fatalf("ScanParallel on fresh encoding: %v", err)
		}
		if !reflect.DeepEqual(pgot, got) {
			t.Fatalf("ScanParallel yielded %d records, sequential %d (or field mismatch)", len(pgot), len(got))
		}
		ps2, err := NewScannerParallel(bytes.NewReader(raw), ScanOptions{})
		if err != nil {
			t.Fatalf("NewScannerParallel on fresh encoding: %v", err)
		}
		pgot = pgot[:0]
		for ps2.Scan() {
			pgot = append(pgot, ps2.Record())
		}
		if err := ps2.Err(); err != nil {
			t.Fatalf("NewScannerParallel on fresh encoding: %v", err)
		}
		if len(pgot) != len(got) {
			t.Fatalf("NewScannerParallel yielded %d records, sequential %d", len(pgot), len(got))
		}

		// The raw fuzz bytes as a trace: a scanner that accepts them must
		// terminate and surface any corruption through Err(), and the
		// random-access reader must never index more records than the
		// stream scan can actually produce.
		if s2, err := NewScanner(bytes.NewReader(data), ScanOptions{}); err == nil {
			streamed := 0
			for s2.Scan() {
				streamed++
			}
			if f2, err := NewFile(bytes.NewReader(data), int64(len(data))); err == nil && s2.Err() == nil {
				if f2.Records() != streamed {
					t.Fatalf("file header claims %d records, stream scan yielded %d", f2.Records(), streamed)
				}
			}
		}

		// Hostile bytes through the parallel paths: the footer index is
		// validated before any worker dereferences it, so both scanners
		// must terminate with a clean end or an error — never panic or
		// hang, and never disagree with the sequential scan on success.
		if hf, err := NewFile(bytes.NewReader(data), int64(len(data))); err == nil {
			hs := hf.ScanParallel(ScanOptions{}, 3)
			hostile := 0
			for hs.Scan() {
				hostile++
			}
			if hs.Err() == nil && hostile != hf.Records() {
				t.Fatalf("hostile ScanParallel yielded %d records, index says %d", hostile, hf.Records())
			}
			hs.Close()
		}
		if hs, err := NewScannerParallel(bytes.NewReader(data), ScanOptions{}); err == nil {
			for hs.Scan() {
			}
			hs.Close()
		}
	})
}
