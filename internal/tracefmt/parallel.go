package tracefmt

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"hpcfail/internal/failures"
)

// decBatch carries one decoded block from a producer to the consumer.
// Batches arrive on the out channel in block order; ready is closed
// once recs and err are final, so the consumer can wait for a specific
// block while later blocks are still being decoded.
type decBatch struct {
	info  BlockInfo
	recs  []failures.Record
	err   error
	ready chan struct{}
}

// closedChan is the pre-closed ready channel used by producers whose
// batches are final at publication time (the streaming read-ahead path
// and error batches).
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// ParallelScanner yields the records of a binary trace in the same
// order as Scanner — byte-identical analysis results at any worker
// count — while the decode work runs ahead on other goroutines. It
// implements the engine.RecordSource shape (Scan/Record/Err) and
// ScanBatch (engine.BatchSource), which is the intended way to consume
// it: one whole decoded block per call, no per-record hand-off.
//
// Record buffers are pooled: a fixed set of slices cycles between the
// producers and the consumer, so steady-state decoding allocates only
// when a block outgrows its reused buffer. Close releases the worker
// goroutines early; letting the scan run to its end (or first error)
// releases them too.
type ParallelScanner struct {
	out  chan *decBatch         // producer → consumer, block order
	free chan []failures.Record // recycled record buffers
	stop chan struct{}

	stopOnce sync.Once
	drained  bool

	cur     []failures.Record
	i       int
	rec     failures.Record
	err     error
	done    bool
	scanned int
}

func newParallelScanner(inflight int) *ParallelScanner {
	p := &ParallelScanner{
		out:  make(chan *decBatch, inflight),
		free: make(chan []failures.Record, inflight),
		stop: make(chan struct{}),
	}
	for i := 0; i < inflight; i++ {
		p.free <- nil
	}
	return p
}

// ScanParallel scans the trace with a pool of block-decode workers over
// the footer index: a dispatcher walks the index in order, skipping
// blocks the time window cannot touch (they are never read), and
// publishes each remaining block to the consumer before handing it to
// the pool, so blocks re-emit strictly in index order no matter which
// worker finishes first. workers <= 0 uses GOMAXPROCS. The returned
// scanner yields exactly the records of f.Scan(opts), in the same
// order.
func (f *File) ScanParallel(opts ScanOptions, workers int) *ParallelScanner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n := len(f.blocks); n > 0 && workers > n {
		workers = n
	}
	fromN, toInc := scanBounds(opts)
	inflight := workers + 2
	p := newParallelScanner(inflight)
	work := make(chan *decBatch, inflight)

	// Dispatcher: the free channel is both the buffer pool and the
	// backpressure bound — at most inflight blocks are decoded ahead
	// of the consumer. Because order-publication (out) and decode
	// hand-off (work) both have capacity inflight and every batch
	// holds a free token, neither send can block; the dispatcher only
	// ever waits on free or stop.
	go func() {
		defer close(work)
		defer close(p.out)
		for _, b := range f.blocks {
			if !b.overlaps(fromN, toInc) {
				continue
			}
			var buf []failures.Record
			select {
			case buf = <-p.free:
			case <-p.stop:
				return
			}
			d := &decBatch{info: b, recs: buf, ready: make(chan struct{})}
			p.out <- d
			work <- d
		}
	}()
	for i := 0; i < workers; i++ {
		go func() {
			var frameBuf []byte
			for d := range work {
				d.recs, frameBuf, d.err = f.decodeBlockAt(d.info, frameBuf, fromN, toInc, d.recs[:0])
				close(d.ready)
			}
		}()
	}
	return p
}

// NewScannerParallel is the streaming variant of ScanParallel for
// inputs without random access (pipes, network streams): a single
// producer goroutine read-ahead-decodes the next blocks — frame read,
// CRC, dictionary deltas, column decode — while the consumer drains the
// current one. Block-skipping windows still apply (a skipped block
// costs only its prefix parse). The record order and error behaviour
// match NewScanner exactly.
func NewScannerParallel(r io.Reader, opts ScanOptions) (*ParallelScanner, error) {
	if err := readHeader(r); err != nil {
		return nil, err
	}
	fromN, toInc := scanBounds(opts)
	const inflight = 4
	p := newParallelScanner(inflight)
	go func() {
		defer close(p.out)
		var buf []byte
		var hwDict []failures.HWType
		var detDict []string
		emit := func(d *decBatch) bool {
			select {
			case p.out <- d:
				return true
			case <-p.stop:
				return false
			}
		}
		fail := func(err error) { emit(&decBatch{err: err, ready: closedChan}) }
		for {
			kind, payload, err := readFrame(r, &buf)
			if err != nil {
				fail(err)
				return
			}
			switch kind {
			case frameBlock:
				n, minS, maxS, colOff, err := parseBlock(payload, &hwDict, &detDict, true)
				if err != nil {
					fail(err)
					return
				}
				if !(BlockInfo{MinStart: minS, MaxStart: maxS}).overlaps(fromN, toInc) {
					continue
				}
				var recs []failures.Record
				select {
				case recs = <-p.free:
				case <-p.stop:
					return
				}
				recs, err = decodeColumns(payload, colOff, n, 0, hwDict, detDict, fromN, toInc, recs[:0])
				if err != nil {
					fail(err)
					return
				}
				if !emit(&decBatch{recs: recs, ready: closedChan}) {
					return
				}
			case frameFooter:
				var tr [trailerSize]byte
				if _, err := io.ReadFull(r, tr[:]); err != nil {
					fail(fmt.Errorf("%w: reading trailer: %v", ErrTruncated, err))
					return
				}
				if string(tr[8:]) != trailerMagic {
					fail(fmt.Errorf("%w: bad trailer magic %q", ErrBadMagic, tr[8:]))
					return
				}
				if n, err := r.Read(make([]byte, 1)); n != 0 || err != io.EOF {
					fail(fmt.Errorf("%w: data after trailer", ErrFormat))
					return
				}
				return
			default:
				fail(fmt.Errorf("%w: unknown frame kind %d", ErrFormat, kind))
				return
			}
		}
	}()
	return p, nil
}

// nextBatch recycles the drained batch and blocks until the next
// non-empty one is decoded; nil means end of scan (p.err says whether
// it was clean). On error it shuts the pipeline down before returning.
func (p *ParallelScanner) nextBatch() []failures.Record {
	if p.done || p.err != nil {
		return nil
	}
	if p.cur != nil {
		p.recycle(p.cur)
		p.cur = nil
	}
	for {
		d, ok := <-p.out
		if !ok {
			p.done = true
			return nil
		}
		<-d.ready
		if d.err != nil {
			p.err = d.err
			p.done = true
			p.recycle(d.recs)
			p.shutdown()
			return nil
		}
		if len(d.recs) == 0 {
			p.recycle(d.recs)
			continue
		}
		p.cur = d.recs
		p.i = 0
		p.scanned += len(d.recs)
		return d.recs
	}
}

func (p *ParallelScanner) recycle(buf []failures.Record) {
	select {
	case p.free <- buf[:0]:
	default:
	}
}

// shutdown stops the producers and drains every in-flight batch, so no
// worker is left blocked on a channel. Idempotent.
func (p *ParallelScanner) shutdown() {
	p.stopOnce.Do(func() { close(p.stop) })
	if p.drained {
		return
	}
	p.drained = true
	for d := range p.out {
		<-d.ready
	}
}

// Scan advances to the next record, reporting false at the end of the
// scan or on the first error (see Err).
func (p *ParallelScanner) Scan() bool {
	for {
		if p.i < len(p.cur) {
			p.rec = p.cur[p.i]
			p.i++
			return true
		}
		if p.nextBatch() == nil {
			return false
		}
	}
}

// ScanBatch yields the in-window records of the next block (or the
// unconsumed rest of the current one, if Scan was used mid-block),
// returning (nil, nil) at a clean end of scan. The slice is valid until
// the next ScanBatch or Scan call.
func (p *ParallelScanner) ScanBatch() ([]failures.Record, error) {
	if p.i < len(p.cur) {
		b := p.cur[p.i:]
		p.i = len(p.cur)
		p.rec = b[len(b)-1]
		return b, nil
	}
	b := p.nextBatch()
	if b == nil {
		return nil, p.err
	}
	p.i = len(b)
	p.rec = b[len(b)-1]
	return b, nil
}

// Record returns the record produced by the last successful Scan (after
// ScanBatch: the last record of the batch).
func (p *ParallelScanner) Record() failures.Record { return p.rec }

// Scanned returns how many in-window records have been decoded and
// handed to the consumer so far.
func (p *ParallelScanner) Scanned() int { return p.scanned }

// Err returns the error that stopped the scan, if any. A clean end of
// trace is not an error.
func (p *ParallelScanner) Err() error { return p.err }

// Close releases the scanner's goroutines without waiting for the scan
// to finish. It is a no-op after the scan has already ended and always
// safe to defer; records decoded but not yet consumed are discarded.
func (p *ParallelScanner) Close() error {
	p.shutdown()
	p.done = true
	p.cur = nil
	p.i = 0
	return nil
}
