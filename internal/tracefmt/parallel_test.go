package tracefmt

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hpcfail/internal/failures"
)

// parScanAll drains a ParallelScanner through the Scan/Record interface
// and fails the test on any scan error.
func parScanAll(t testing.TB, p *ParallelScanner) []failures.Record {
	t.Helper()
	defer p.Close()
	var out []failures.Record
	for p.Scan() {
		out = append(out, p.Record())
	}
	if err := p.Err(); err != nil {
		t.Fatalf("parallel scan: %v", err)
	}
	return out
}

// TestParallelWriterByteIdentity is the contract the parallel encoder
// lives by: at every worker count and block size the output bytes are
// exactly the sequential writer's, so checksums, goldens and the
// seed-1 reference digest never depend on -workers.
func TestParallelWriterByteIdentity(t *testing.T) {
	recs := synthRecords(2400)
	workerCounts := []int{2, 4, 8, runtime.NumCPU()}
	for _, blockN := range []int{1, 7, 8192} {
		seq := encode(t, recs, WriterOptions{BlockRecords: blockN})
		for _, workers := range workerCounts {
			t.Run(fmt.Sprintf("block=%d/workers=%d", blockN, workers), func(t *testing.T) {
				par := encode(t, recs, WriterOptions{BlockRecords: blockN, Workers: workers})
				if !bytes.Equal(seq, par) {
					t.Fatalf("parallel encode differs from sequential: %d vs %d bytes", len(par), len(seq))
				}
			})
		}
	}
}

// TestParallelWriterEmptyTrace: a pool writer that never sees a record
// must still emit the exact header+footer+trailer file.
func TestParallelWriterEmptyTrace(t *testing.T) {
	seq := encode(t, nil, WriterOptions{})
	par := encode(t, nil, WriterOptions{Workers: 4})
	if !bytes.Equal(seq, par) {
		t.Fatalf("empty parallel trace differs from sequential")
	}
	f, err := NewFile(bytes.NewReader(par), int64(len(par)))
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	if f.Records() != 0 || len(f.Blocks()) != 0 {
		t.Fatalf("empty parallel trace: Records=%d Blocks=%d", f.Records(), len(f.Blocks()))
	}
}

// TestParallelWriterPoison: a validation error must surface from the
// offending Write, stick across further Writes and both Closes, and
// release the pool goroutines instead of deadlocking on them.
func TestParallelWriterPoison(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{BlockRecords: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	good := synthRecords(5)
	for _, r := range good {
		if err := w.Write(r); err != nil {
			t.Fatalf("good record rejected: %v", err)
		}
	}
	bad := good[0]
	bad.Workload = 300
	if err := w.Write(bad); err == nil {
		t.Fatalf("Write accepted an unrepresentable record")
	}
	if err := w.Write(good[0]); err == nil {
		t.Fatalf("Write succeeded on a poisoned writer")
	}
	if err := w.Close(); err == nil {
		t.Fatalf("Close succeeded on a poisoned writer")
	}
	if err := w.Close(); err == nil {
		t.Fatalf("second Close forgot the poison")
	}
}

// TestParallelWriterPropagatesIOErrors: an underlying write failure
// surfaces on a later Write or at Close (the sequencer owns the I/O)
// and Close never hangs on the dead pool.
func TestParallelWriterPropagatesIOErrors(t *testing.T) {
	w, err := NewWriter(&failingWriter{after: 1}, WriterOptions{BlockRecords: 4, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for _, r := range synthRecords(256) {
		if err := w.Write(r); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		sawErr = w.Close()
	} else if err := w.Close(); err == nil {
		t.Fatalf("Close succeeded after a write error")
	}
	if !errors.Is(sawErr, errShortWrite) {
		t.Fatalf("write error not propagated: %v", sawErr)
	}
}

func TestParallelWriterWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(synthRecords(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Write(synthRecords(1)[0]); err == nil {
		t.Fatalf("Write after Close succeeded")
	}
}

// TestParallelScanIdentity is the decode-side identity matrix: both
// parallel scanners must yield records DeepEqual to the sequential
// Scanner — every field, every order — across worker counts, block
// sizes and time windows.
func TestParallelScanIdentity(t *testing.T) {
	recs := synthRecords(3000)
	from := time.Date(1996, 8, 10, 0, 0, 0, 0, time.UTC)
	to := time.Date(1996, 10, 1, 0, 0, 0, 0, time.UTC)
	workerCounts := []int{1, 4, 8, runtime.NumCPU()}
	for _, blockN := range []int{1, 7, 8192} {
		raw := encode(t, recs, WriterOptions{BlockRecords: blockN})
		for wi, opts := range []ScanOptions{{}, {From: from, To: to}} {
			s, err := NewScanner(bytes.NewReader(raw), ScanOptions{From: opts.From, To: opts.To})
			if err != nil {
				t.Fatal(err)
			}
			want := scanAll(t, s)
			if wi == 1 && (len(want) == 0 || len(want) == len(recs)) {
				t.Fatalf("degenerate window: %d of %d records", len(want), len(recs))
			}
			for _, workers := range workerCounts {
				t.Run(fmt.Sprintf("block=%d/window=%d/workers=%d", blockN, wi, workers), func(t *testing.T) {
					f, err := NewFile(bytes.NewReader(raw), int64(len(raw)))
					if err != nil {
						t.Fatal(err)
					}
					ps := f.ScanParallel(opts, workers)
					got := parScanAll(t, ps)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("ScanParallel: %d records, want %d (or field mismatch)", len(got), len(want))
					}
					if ps.Scanned() != len(want) {
						t.Fatalf("Scanned() = %d, want %d", ps.Scanned(), len(want))
					}
				})
			}
			t.Run(fmt.Sprintf("block=%d/window=%d/stream", blockN, wi), func(t *testing.T) {
				ps, err := NewScannerParallel(bytes.NewReader(raw), opts)
				if err != nil {
					t.Fatal(err)
				}
				got := parScanAll(t, ps)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("NewScannerParallel: %d records, want %d (or field mismatch)", len(got), len(want))
				}
			})
		}
	}
}

// atomicReaderAt counts ReadAt calls race-free, since parallel decode
// workers read concurrently.
type atomicReaderAt struct {
	r     *bytes.Reader
	reads atomic.Int64
}

func (c *atomicReaderAt) ReadAt(p []byte, off int64) (int, error) {
	c.reads.Add(1)
	return c.r.ReadAt(p, off)
}

// TestParallelScanWindowSkipsReads: the dispatcher must skip
// out-of-window blocks before any worker touches the file, so a
// windowed parallel scan costs reads only for overlapping blocks.
func TestParallelScanWindowSkipsReads(t *testing.T) {
	recs := synthRecords(2000)
	base := time.Date(1996, 8, 1, 0, 0, 0, 0, time.UTC)
	for i := range recs {
		recs[i].Start = base.Add(time.Duration(i)*time.Hour - time.Duration(i%7)*time.Minute)
		recs[i].End = recs[i].Start.Add(time.Duration(1+i%90) * time.Minute)
	}
	raw := encode(t, recs, WriterOptions{BlockRecords: 50})
	from := time.Date(1996, 8, 20, 0, 0, 0, 0, time.UTC)
	to := time.Date(1996, 9, 10, 0, 0, 0, 0, time.UTC)

	cra := &atomicReaderAt{r: bytes.NewReader(raw)}
	f, err := NewFile(cra, int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	fromN, toInc := from.UnixNano(), to.UnixNano()-1
	overlapping := 0
	for _, b := range f.Blocks() {
		if b.overlaps(fromN, toInc) {
			overlapping++
		}
	}
	if overlapping == 0 || overlapping == len(f.Blocks()) {
		t.Fatalf("degenerate window: %d of %d blocks overlap", overlapping, len(f.Blocks()))
	}
	openReads := cra.reads.Load()
	got := parScanAll(t, f.ScanParallel(ScanOptions{From: from, To: to}, 4))
	scanReads := cra.reads.Load() - openReads
	if maxReads := int64(2 * overlapping); scanReads > maxReads {
		t.Fatalf("parallel range scan issued %d reads for %d overlapping blocks (max %d): skipping is broken",
			scanReads, overlapping, maxReads)
	}
	var want int
	for _, r := range recs {
		if !r.Start.Before(from) && r.Start.Before(to) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("windowed parallel scan yielded %d records, want %d", len(got), want)
	}
}

// TestParallelScanCorruption flips a byte in every frame of the trace,
// one corrupted copy at a time, and requires each parallel scanner to
// surface an error — never panic, never deadlock — and to shut down
// cleanly with workers drained.
func TestParallelScanCorruption(t *testing.T) {
	recs := synthRecords(300)
	raw := encode(t, recs, WriterOptions{BlockRecords: 25})
	clean, err := NewFile(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	blocks := clean.Blocks()
	if len(blocks) < 4 {
		t.Fatalf("want several blocks, got %d", len(blocks))
	}
	// One corruption site per block frame (mid-payload) plus one in the
	// frame header's kind byte, for every block in the file.
	type site struct {
		name string
		off  int64
	}
	var sites []site
	for bi, b := range blocks {
		sites = append(sites,
			site{fmt.Sprintf("block%d-kind", bi), b.Offset},
			site{fmt.Sprintf("block%d-payload", bi), b.Offset + frameSize + 10},
		)
	}
	for _, sc := range sites {
		t.Run(sc.name, func(t *testing.T) {
			bad := append([]byte(nil), raw...)
			bad[sc.off] ^= 0x5b

			f, err := NewFile(bytes.NewReader(bad), int64(len(bad)))
			if err == nil {
				ps := f.ScanParallel(ScanOptions{}, 4)
				for ps.Scan() {
				}
				if ps.Err() == nil {
					t.Fatalf("ScanParallel missed the corruption at offset %d", sc.off)
				}
				if err := ps.Close(); err != nil {
					t.Fatalf("Close after error: %v", err)
				}
			}

			ps, err := NewScannerParallel(bytes.NewReader(bad), ScanOptions{})
			if err != nil {
				return // header corrupt: rejected at open, also fine
			}
			for ps.Scan() {
			}
			if ps.Err() == nil {
				t.Fatalf("NewScannerParallel missed the corruption at offset %d", sc.off)
			}
			if err := ps.Close(); err != nil {
				t.Fatalf("Close after error: %v", err)
			}
		})
	}
}

// TestParallelScanEarlyClose abandons scans mid-flight and checks every
// producer goroutine unwinds: Close must drain the in-flight blocks, not
// strand workers on a channel nobody reads.
func TestParallelScanEarlyClose(t *testing.T) {
	recs := synthRecords(20000)
	raw := encode(t, recs, WriterOptions{BlockRecords: 64})
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		f, err := NewFile(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			t.Fatal(err)
		}
		ps := f.ScanParallel(ScanOptions{}, 8)
		for j := 0; j < 10 && ps.Scan(); j++ {
		}
		if err := ps.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if ps.Scan() {
			t.Fatalf("Scan succeeded after Close")
		}

		ps2, err := NewScannerParallel(bytes.NewReader(raw), ScanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 10 && ps2.Scan(); j++ {
		}
		if err := ps2.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("%d goroutines before, %d after five abandoned scans: workers leaked", before, n)
	}
}

// TestParallelScanBatchInterleave mixes Scan and ScanBatch on one
// scanner; together they must reconstruct the exact sequential record
// stream, with Record() tracking the last yielded record either way.
func TestParallelScanBatchInterleave(t *testing.T) {
	recs := synthRecords(1203)
	raw := encode(t, recs, WriterOptions{BlockRecords: 50})
	s, err := NewScanner(bytes.NewReader(raw), ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := scanAll(t, s)

	f, err := NewFile(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	ps := f.ScanParallel(ScanOptions{}, 3)
	defer ps.Close()
	var got []failures.Record
	for turn := 0; ; turn++ {
		if turn%2 == 0 {
			advanced := false
			for k := 0; k < 3 && ps.Scan(); k++ {
				got = append(got, ps.Record())
				advanced = true
			}
			if !advanced {
				break
			}
		} else {
			b, err := ps.ScanBatch()
			if err != nil {
				t.Fatalf("ScanBatch: %v", err)
			}
			if b == nil {
				break
			}
			if ps.Record() != b[len(b)-1] {
				t.Fatalf("Record() after ScanBatch is not the batch's last record")
			}
			got = append(got, b...)
		}
	}
	if err := ps.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("interleaved Scan/ScanBatch yielded %d records, want %d (or field mismatch)", len(got), len(want))
	}
	if ps.Scanned() != len(want) {
		t.Fatalf("Scanned() = %d, want %d", ps.Scanned(), len(want))
	}
}

// TestParallelScanBatchSteadyStateAllocs pins the buffer pooling: once
// the recycled record buffers have grown to block size, draining a
// block costs a small constant number of allocations (the batch
// envelope and its ready channel), not per-record garbage.
func TestParallelScanBatchSteadyStateAllocs(t *testing.T) {
	recs := synthRecords(60000)
	raw := encode(t, recs, WriterOptions{BlockRecords: 512})
	f, err := NewFile(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	ps := f.ScanParallel(ScanOptions{}, 4)
	defer ps.Close()
	for i := 0; i < 20; i++ {
		b, err := ps.ScanBatch()
		if err != nil || b == nil {
			t.Fatalf("trace exhausted during warmup at batch %d (err=%v)", i, err)
		}
	}
	const perRun = 10
	avg := testing.AllocsPerRun(5, func() {
		for i := 0; i < perRun; i++ {
			b, err := ps.ScanBatch()
			if err != nil || b == nil {
				t.Fatalf("trace exhausted mid-measurement (err=%v)", err)
			}
		}
	})
	if perBatch := avg / perRun; perBatch > 16 {
		t.Fatalf("steady-state ScanBatch allocates %.1f allocs/block, want a small constant (buffer pooling broken)", perBatch)
	}
}

// TestOpenWindowExtremeStarts is a regression test: the scan window used
// to be half-open in nanoseconds internally, so an open upper bound
// became toN = MaxInt64 and a record starting at exactly MaxInt64 ns was
// silently dropped by every reader (and its block could be skipped
// outright). Bounds are now inclusive; the full int64 range scans.
func TestOpenWindowExtremeStarts(t *testing.T) {
	lo := time.Unix(0, math.MinInt64).UTC()
	hi := time.Unix(0, math.MaxInt64).UTC()
	mid := time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(ts time.Time) failures.Record {
		r := synthRecords(1)[0]
		r.Start, r.End = ts, ts
		return r
	}
	recs := []failures.Record{mk(lo), mk(mid), mk(hi)}
	raw := encode(t, recs, WriterOptions{BlockRecords: 1})

	check := func(name string, opts ScanOptions, want int) {
		t.Helper()
		s, err := NewScanner(bytes.NewReader(raw), opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := scanAll(t, s); len(got) != want {
			t.Fatalf("%s: Scanner yielded %d records, want %d", name, len(got), want)
		}
		f, err := NewFile(bytes.NewReader(raw), int64(len(raw)))
		if err != nil {
			t.Fatal(err)
		}
		if got := scanAll(t, f.Scan(opts)); len(got) != want {
			t.Fatalf("%s: File.Scan yielded %d records, want %d", name, len(got), want)
		}
		if got := parScanAll(t, f.ScanParallel(opts, 2)); len(got) != want {
			t.Fatalf("%s: ScanParallel yielded %d records, want %d", name, len(got), want)
		}
		ps, err := NewScannerParallel(bytes.NewReader(raw), opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := parScanAll(t, ps); len(got) != want {
			t.Fatalf("%s: NewScannerParallel yielded %d records, want %d", name, len(got), want)
		}
	}

	check("open", ScanOptions{}, 3)
	check("from=MaxInt64", ScanOptions{From: hi}, 1)
	check("to=MaxInt64", ScanOptions{To: hi}, 2) // To is exclusive
	check("from=MinInt64", ScanOptions{From: lo}, 3)
	check("to=mid", ScanOptions{To: mid}, 1)
}

// TestWindowExactBlockBoundaries pins the skip logic at the index edges:
// From equal to a block's MaxStart must still scan that block; To equal
// to a block's MinStart must skip it without reading it.
func TestWindowExactBlockBoundaries(t *testing.T) {
	base := time.Date(1996, 8, 1, 0, 0, 0, 0, time.UTC)
	recs := synthRecords(8)
	for i := range recs {
		recs[i].Start = base.Add(time.Duration(i) * time.Hour)
		recs[i].End = recs[i].Start.Add(time.Minute)
	}
	raw := encode(t, recs, WriterOptions{BlockRecords: 4})

	cra := &atomicReaderAt{r: bytes.NewReader(raw)}
	f, err := NewFile(cra, int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks()) != 2 {
		t.Fatalf("want 2 blocks, got %d", len(f.Blocks()))
	}

	// To == second block's MinStart: its records are all excluded, so the
	// block must not cost a single read.
	openReads := cra.reads.Load()
	if got := scanAll(t, f.Scan(ScanOptions{To: base.Add(4 * time.Hour)})); len(got) != 4 {
		t.Fatalf("To at block boundary: %d records, want 4", len(got))
	}
	if n := cra.reads.Load() - openReads; n > 2 {
		t.Fatalf("scan of one block issued %d reads, want <= 2: boundary block not skipped", n)
	}

	// From == first block's MaxStart: the boundary record itself is
	// in-window, so the first block must still be scanned.
	if got := scanAll(t, f.Scan(ScanOptions{From: base.Add(3 * time.Hour)})); len(got) != 5 {
		t.Fatalf("From at block max: %d records, want 5", len(got))
	}
	if got := parScanAll(t, f.ScanParallel(ScanOptions{From: base.Add(3 * time.Hour)}, 2)); len(got) != 5 {
		t.Fatalf("From at block max (parallel): %d records, want 5", len(got))
	}
	if got := parScanAll(t, f.ScanParallel(ScanOptions{To: base.Add(4 * time.Hour)}, 2)); len(got) != 4 {
		t.Fatalf("To at block boundary (parallel): %d records, want 4", len(got))
	}
}

// TestTruncatedHeaderClassification is a regression test: an input that
// ends inside the 8-byte header but matches the magic as far as it goes
// used to come back as ErrBadMagic ("not a trace") even though
// SniffMagic had just said it was one. It is a truncated trace.
func TestTruncatedHeaderClassification(t *testing.T) {
	raw := encode(t, synthRecords(3), WriterOptions{})
	for _, n := range []int{1, 3, len(magic), len(magic) + 1} {
		_, err := NewScanner(bytes.NewReader(raw[:n]), ScanOptions{})
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("NewScanner on %d-byte magic prefix: got %v, want ErrTruncated", n, err)
		}
		_, err = NewScannerParallel(bytes.NewReader(raw[:n]), ScanOptions{})
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("NewScannerParallel on %d-byte magic prefix: got %v, want ErrTruncated", n, err)
		}
	}
	if _, err := NewScanner(bytes.NewReader([]byte("XYZ")), ScanOptions{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("foreign short file: got %v, want ErrBadMagic", err)
	}
	if _, err := NewScanner(bytes.NewReader(nil), ScanOptions{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty file: got %v, want ErrBadMagic", err)
	}
}

// TestSniffMagicShortPrefix: sniffing must never claim a trace on fewer
// bytes than the magic, and never index past a short prefix.
func TestSniffMagicShortPrefix(t *testing.T) {
	for _, p := range [][]byte{nil, {}, []byte("H"), []byte("HPC"), []byte("XPCTRC")} {
		if SniffMagic(p) {
			t.Fatalf("SniffMagic(%q) = true", p)
		}
	}
	if !SniffMagic([]byte(magic)) || !SniffMagic([]byte(magic+"\x01\x00extra")) {
		t.Fatalf("SniffMagic rejected a real trace prefix")
	}
}
