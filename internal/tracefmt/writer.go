package tracefmt

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"hpcfail/internal/failures"
)

// WriterOptions configures a Writer; the zero value selects every
// default.
type WriterOptions struct {
	// BlockRecords is the number of records per block; <= 0 uses
	// DefaultBlockRecords.
	BlockRecords int
	// Workers sets how many goroutines encode block payloads in
	// parallel; <= 1 encodes inline on the caller's goroutine. Output
	// bytes are identical at every worker count: dictionary indexes
	// are still assigned in record order on the caller's goroutine,
	// workers only turn finished row batches into frames, and a single
	// sequencer writes the frames in submission order (see DESIGN.md,
	// "Block-order sequencing").
	Workers int
}

// A Writer encodes failure records into the columnar binary trace
// format, one record at a time, so a producer (a CSV scanner, the LANL
// generator's streaming emitter) can write traces of any size in
// bounded memory. The header goes out at construction; Close flushes
// the final block, the footer and the trailer, and must be called for
// the file to be readable.
//
// Write's signature matches the emit callback of lanl.GenerateStream,
// so the fused pipeline is literally gen.GenerateStream(w.Write).
//
// The per-record path appends a fixed-width row to a reusable block
// buffer: after the first few blocks it allocates only when a
// never-before-seen label enters a dictionary. With Workers > 1 the
// row→frame encode (column transpose, dictionary deltas, CRC) runs on
// a bounded pool; validation errors still surface synchronously from
// Write, while I/O errors from the sequencer may surface on a later
// Write or at Close.
type Writer struct {
	w      io.Writer
	blockN int

	// rows is the block under construction; hwNew/detNew hold the
	// dictionary entries first seen in it, flushed with it.
	rows   []encRow
	hwNew  []failures.HWType
	detNew []string

	// Dictionaries, global across the file.
	hwIdx  map[failures.HWType]uint16
	hwAll  []failures.HWType
	detIdx map[string]uint32
	detAll []string

	// File assembly state. With a pool running, offset and index are
	// owned by the sequencer (in par) until shutdownPool merges them
	// back; total stays caller-owned, bumped at dispatch.
	offset  int64 // bytes written so far
	index   []BlockInfo
	total   uint64
	scratch []byte // frame assembly buffer, reused across flushes
	closed  bool
	err     error

	par *parWriter
}

// encRow is one record, validated and dictionary-indexed, waiting to be
// transposed into its block's columns.
type encRow struct {
	startN int64
	endD   int64
	sys    uint32
	nod    uint32
	det    uint32
	hw     uint16
	wl     byte
	cause  byte
}

// NewWriter writes the file header to w and returns a Writer.
func NewWriter(w io.Writer, opts WriterOptions) (*Writer, error) {
	n := opts.BlockRecords
	if n <= 0 {
		n = DefaultBlockRecords
	}
	tw := &Writer{
		w:      w,
		blockN: n,
		hwIdx:  make(map[failures.HWType]uint16),
		detIdx: make(map[string]uint32),
	}
	hdr := append([]byte(magic), 0, 0)
	le.PutUint16(hdr[len(magic):], Version)
	if err := tw.writeRaw(hdr); err != nil {
		return nil, fmt.Errorf("tracefmt: write header: %w", err)
	}
	if opts.Workers > 1 {
		tw.par = newParWriter(w, tw.offset, opts.Workers)
	}
	return tw, nil
}

func (w *Writer) writeRaw(b []byte) error {
	n, err := w.w.Write(b)
	w.offset += int64(n)
	if err != nil {
		w.err = err
	}
	return err
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return int(w.total) + len(w.rows) }

// Write appends one record. Records are stored exactly as given — the
// format neither sorts nor validates beyond what it can represent: times
// within the int64 epoch-nanosecond range, system and node within
// int32, workload and cause within their enum ranges.
func (w *Writer) Write(r failures.Record) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("tracefmt: write after Close")
	}
	startN, err := epochNanos(r.Start, "start")
	if err != nil {
		return w.poison(err)
	}
	endN, err := epochNanos(r.End, "end")
	if err != nil {
		return w.poison(err)
	}
	if r.System < 0 || int64(r.System) > math.MaxInt32 {
		return w.poison(fmt.Errorf("tracefmt: system ID %d outside int32", r.System))
	}
	if r.Node < 0 || int64(r.Node) > math.MaxInt32 {
		return w.poison(fmt.Errorf("tracefmt: node ID %d outside int32", r.Node))
	}
	if r.Workload < 0 || r.Workload > 255 {
		return w.poison(fmt.Errorf("tracefmt: workload %d outside byte range", int(r.Workload)))
	}
	if r.Cause < 0 || r.Cause > 255 {
		return w.poison(fmt.Errorf("tracefmt: cause %d outside byte range", int(r.Cause)))
	}
	hw, err := w.hwIndex(r.HW)
	if err != nil {
		return w.poison(err)
	}
	det, err := w.detIndex(r.Detail)
	if err != nil {
		return w.poison(err)
	}

	w.rows = append(w.rows, encRow{
		startN: startN,
		endD:   endN - startN,
		sys:    uint32(r.System),
		nod:    uint32(r.Node),
		det:    det,
		hw:     hw,
		wl:     byte(r.Workload),
		cause:  byte(r.Cause),
	})
	if len(w.rows) >= w.blockN {
		if w.par != nil {
			return w.dispatchBlock()
		}
		return w.flushBlock()
	}
	return nil
}

func (w *Writer) poison(err error) error {
	w.err = err
	return err
}

// epochNanos converts a time to epoch nanoseconds, rejecting instants
// the int64 range cannot represent (UnixNano would silently wrap).
func epochNanos(t time.Time, what string) (int64, error) {
	n := t.UnixNano()
	if !time.Unix(0, n).Equal(t) {
		return 0, fmt.Errorf("tracefmt: %s time %v outside the epoch-nanosecond range", what, t)
	}
	return n, nil
}

func (w *Writer) hwIndex(hw failures.HWType) (uint16, error) {
	if i, ok := w.hwIdx[hw]; ok {
		return i, nil
	}
	if len(hw) > maxLabelLen {
		return 0, fmt.Errorf("tracefmt: hardware label %d bytes long, max %d", len(hw), maxLabelLen)
	}
	if len(w.hwAll) >= maxHWDict {
		return 0, fmt.Errorf("tracefmt: more than %d distinct hardware labels", maxHWDict)
	}
	i := uint16(len(w.hwAll))
	w.hwIdx[hw] = i
	w.hwAll = append(w.hwAll, hw)
	w.hwNew = append(w.hwNew, hw)
	return i, nil
}

func (w *Writer) detIndex(det string) (uint32, error) {
	if i, ok := w.detIdx[det]; ok {
		return i, nil
	}
	if len(det) > maxLabelLen {
		return 0, fmt.Errorf("tracefmt: detail label %d bytes long, max %d", len(det), maxLabelLen)
	}
	if len(w.detAll) >= maxDetailDict {
		return 0, fmt.Errorf("tracefmt: more than %d distinct detail labels", maxDetailDict)
	}
	i := uint32(len(w.detAll))
	w.detIdx[det] = i
	w.detAll = append(w.detAll, det)
	w.detNew = append(w.detNew, det)
	return i, nil
}

// appendBlockFrame appends a complete block frame — header, prefix,
// dictionary deltas, transposed columns, CRC — to dst and returns the
// block's start-time bounds. It is pure (touches no Writer state), so
// the sequential flush and every pool worker produce identical bytes
// for identical inputs.
func appendBlockFrame(dst []byte, rows []encRow, hwNew []failures.HWType, detNew []string) ([]byte, int64, int64, error) {
	base := len(dst)
	var zero [frameSize]byte
	dst = append(dst, zero[:]...)
	minS, maxS := rows[0].startN, rows[0].startN
	for _, r := range rows[1:] {
		if r.startN < minS {
			minS = r.startN
		}
		if r.startN > maxS {
			maxS = r.startN
		}
	}
	dst = appendU32(dst, uint32(len(rows)))
	dst = appendI64(dst, minS)
	dst = appendI64(dst, maxS)
	dst = appendU16(dst, uint16(len(hwNew)))
	for _, hw := range hwNew {
		dst = appendU16(dst, uint16(len(hw)))
		dst = append(dst, hw...)
	}
	dst = appendU32(dst, uint32(len(detNew)))
	for _, det := range detNew {
		dst = appendU16(dst, uint16(len(det)))
		dst = append(dst, det...)
	}
	for _, r := range rows {
		dst = appendI64(dst, r.startN)
	}
	for _, r := range rows {
		dst = appendI64(dst, r.endD)
	}
	for _, r := range rows {
		dst = appendU32(dst, r.sys)
	}
	for _, r := range rows {
		dst = appendU32(dst, r.nod)
	}
	for _, r := range rows {
		dst = appendU16(dst, r.hw)
	}
	for _, r := range rows {
		dst = append(dst, r.wl)
	}
	for _, r := range rows {
		dst = append(dst, r.cause)
	}
	for _, r := range rows {
		dst = appendU32(dst, r.det)
	}
	payload := dst[base+frameSize:]
	if len(payload) > maxFramePayload {
		return dst, 0, 0, fmt.Errorf("tracefmt: frame payload %d bytes exceeds the %d cap (lower BlockRecords)",
			len(payload), maxFramePayload)
	}
	hdr := dst[base : base+frameSize]
	hdr[0] = frameBlock
	le.PutUint32(hdr[1:], uint32(len(payload)))
	le.PutUint32(hdr[5:], crc32Checksum(payload))
	return dst, minS, maxS, nil
}

// flushBlock encodes and writes the block under construction inline
// (the sequential path).
func (w *Writer) flushBlock() error {
	if len(w.rows) == 0 {
		return nil
	}
	frame, minS, maxS, err := appendBlockFrame(w.scratch[:0], w.rows, w.hwNew, w.detNew)
	w.scratch = frame[:0]
	if err != nil {
		return w.poison(err)
	}
	info := BlockInfo{
		Offset:   w.offset,
		Records:  len(w.rows),
		MinStart: minS,
		MaxStart: maxS,
	}
	if err := w.writeRaw(frame); err != nil {
		return fmt.Errorf("tracefmt: write frame: %w", err)
	}
	w.index = append(w.index, info)
	w.total += uint64(len(w.rows))
	w.rows = w.rows[:0]
	w.hwNew = w.hwNew[:0]
	w.detNew = w.detNew[:0]
	return nil
}

// writeFrame frames a payload with its kind, length and CRC-32C (footer
// path; blocks go through appendBlockFrame).
func (w *Writer) writeFrame(kind byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return w.poison(fmt.Errorf("tracefmt: frame payload %d bytes exceeds the %d cap (lower BlockRecords)",
			len(payload), maxFramePayload))
	}
	var hdr [frameSize]byte
	hdr[0] = kind
	le.PutUint32(hdr[1:], uint32(len(payload)))
	le.PutUint32(hdr[5:], crc32Checksum(payload))
	if err := w.writeRaw(hdr[:]); err != nil {
		return fmt.Errorf("tracefmt: write frame: %w", err)
	}
	if err := w.writeRaw(payload); err != nil {
		return fmt.Errorf("tracefmt: write frame: %w", err)
	}
	return nil
}

func crc32Checksum(p []byte) uint32 { return crc32Update(0, p) }

// ---- Parallel encode: bounded worker pool + block-order sequencer ----

// encJob carries one block's rows from the caller through a pool worker
// (which renders the frame) to the sequencer (which writes frames in
// submission order). Jobs are recycled through the free channel, so a
// running Writer owns a fixed set of workers+2 row/frame buffers.
type encJob struct {
	rows   []encRow
	hwNew  []failures.HWType
	detNew []string
	frame  []byte
	minS   int64
	maxS   int64
	err    error
	done   chan struct{}
}

type parWriter struct {
	w     io.Writer
	jobs  chan *encJob // caller → workers
	order chan *encJob // caller → sequencer, in submission order
	free  chan *encJob // sequencer → caller, recycled
	seqDn chan struct{}

	// Sequencer-owned until seqDn closes; merged back by shutdownPool.
	offset int64
	index  []BlockInfo

	mu  sync.Mutex
	err error // first async error: encode overflow or write failure
}

func newParWriter(w io.Writer, offset int64, workers int) *parWriter {
	inflight := workers + 2
	p := &parWriter{
		w:      w,
		jobs:   make(chan *encJob),
		order:  make(chan *encJob, inflight),
		free:   make(chan *encJob, inflight),
		seqDn:  make(chan struct{}),
		offset: offset,
	}
	for i := 0; i < inflight; i++ {
		p.free <- &encJob{}
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go p.sequence()
	return p
}

func (p *parWriter) worker() {
	for j := range p.jobs {
		j.frame, j.minS, j.maxS, j.err = appendBlockFrame(j.frame[:0], j.rows, j.hwNew, j.detNew)
		close(j.done)
	}
}

// sequence writes finished frames in submission order — the only
// goroutine touching the underlying writer while the pool runs. After
// the first error it keeps draining (so dispatch and Close never block)
// but writes nothing further.
func (p *parWriter) sequence() {
	defer close(p.seqDn)
	for j := range p.order {
		<-j.done
		if p.getErr() == nil {
			switch {
			case j.err != nil:
				p.setErr(j.err)
			default:
				info := BlockInfo{
					Offset:   p.offset,
					Records:  len(j.rows),
					MinStart: j.minS,
					MaxStart: j.maxS,
				}
				n, werr := p.w.Write(j.frame)
				p.offset += int64(n)
				if werr != nil {
					p.setErr(fmt.Errorf("tracefmt: write frame: %w", werr))
				} else {
					p.index = append(p.index, info)
				}
			}
		}
		j.rows = j.rows[:0]
		j.hwNew = j.hwNew[:0]
		j.detNew = j.detNew[:0]
		j.err = nil
		p.free <- j
	}
}

func (p *parWriter) getErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *parWriter) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// dispatchBlock hands the full block to the pool, swapping buffers with
// a recycled job so the caller never copies rows. The free channel is
// the backpressure bound: with all workers+2 jobs in flight the caller
// blocks here until the sequencer retires one.
func (w *Writer) dispatchBlock() error {
	if err := w.par.getErr(); err != nil {
		return w.poison(err)
	}
	if len(w.rows) == 0 {
		return nil
	}
	j := <-w.par.free
	j.done = make(chan struct{})
	j.rows, w.rows = w.rows, j.rows
	j.hwNew, w.hwNew = w.hwNew, j.hwNew
	j.detNew, w.detNew = w.detNew, j.detNew
	w.total += uint64(len(j.rows))
	// Both sends are non-blocking by construction (order and free share
	// a capacity, and every job in order came out of free), so the two
	// channels always observe the same submission order.
	w.par.order <- j
	w.par.jobs <- j
	return nil
}

// shutdownPool stops the workers and sequencer, waits for every
// dispatched block to be written, and merges the sequencer's offset and
// index back into the Writer. Idempotent; returns the first async error.
func (w *Writer) shutdownPool() error {
	p := w.par
	if p == nil {
		return nil
	}
	w.par = nil
	close(p.jobs)
	close(p.order)
	<-p.seqDn
	w.offset = p.offset
	w.index = p.index
	return p.getErr()
}

// Close flushes the final partial block, then writes the footer (total
// count, block index, complete dictionaries) and the trailer that lets
// a random-access reader locate the footer from the end of the file.
// Close does not close the underlying writer. On a Writer with workers,
// Close (successful or not) also stops the pool; it is the only way to
// release those goroutines.
func (w *Writer) Close() error {
	if w.err != nil {
		w.shutdownPool() // release goroutines; the original error stands
		return w.err
	}
	if w.closed {
		return nil
	}
	if w.par != nil {
		if err := w.dispatchBlock(); err != nil {
			w.shutdownPool()
			return err
		}
		if err := w.shutdownPool(); err != nil {
			return w.poison(err)
		}
	} else if err := w.flushBlock(); err != nil {
		return err
	}
	footerOffset := w.offset
	p := w.scratch[:0]
	p = appendU64(p, w.total)
	p = appendU32(p, uint32(len(w.index)))
	for _, b := range w.index {
		p = appendU64(p, uint64(b.Offset))
		p = appendU32(p, uint32(b.Records))
		p = appendI64(p, b.MinStart)
		p = appendI64(p, b.MaxStart)
	}
	p = appendU16(p, uint16(len(w.hwAll)))
	for _, hw := range w.hwAll {
		p = appendU16(p, uint16(len(hw)))
		p = append(p, hw...)
	}
	p = appendU32(p, uint32(len(w.detAll)))
	for _, det := range w.detAll {
		p = appendU16(p, uint16(len(det)))
		p = append(p, det...)
	}
	if err := w.writeFrame(frameFooter, p); err != nil {
		return err
	}
	w.scratch = p[:0]
	var tr [trailerSize]byte
	le.PutUint64(tr[:], uint64(footerOffset))
	copy(tr[8:], trailerMagic)
	if err := w.writeRaw(tr[:]); err != nil {
		return fmt.Errorf("tracefmt: write trailer: %w", err)
	}
	w.closed = true
	return nil
}
