package tracefmt

import (
	"fmt"
	"io"
	"math"
	"time"

	"hpcfail/internal/failures"
)

// WriterOptions configures a Writer; the zero value selects every
// default.
type WriterOptions struct {
	// BlockRecords is the number of records per block; <= 0 uses
	// DefaultBlockRecords.
	BlockRecords int
}

// A Writer encodes failure records into the columnar binary trace
// format, one record at a time, so a producer (a CSV scanner, the LANL
// generator's streaming emitter) can write traces of any size in
// bounded memory. The header goes out at construction; Close flushes
// the final block, the footer and the trailer, and must be called for
// the file to be readable.
//
// Write's signature matches the emit callback of lanl.GenerateStream,
// so the fused pipeline is literally gen.GenerateStream(w.Write).
//
// The per-record path appends fixed-width words to reusable column
// buffers: after the first few blocks it allocates only when a
// never-before-seen label enters a dictionary.
type Writer struct {
	w      io.Writer
	blockN int

	// Column buffers for the block under construction.
	count    int
	starts   []byte
	endDs    []byte
	systems  []byte
	nodes    []byte
	hws      []byte
	wls      []byte
	causes   []byte
	details  []byte
	minStart int64
	maxStart int64

	// Dictionaries, global across the file; hwNew/detNew hold the
	// entries first seen in the current block, flushed with it.
	hwIdx  map[failures.HWType]uint16
	hwAll  []failures.HWType
	hwNew  []failures.HWType
	detIdx map[string]uint32
	detAll []string
	detNew []string

	// File assembly state.
	offset  int64 // bytes written so far
	index   []BlockInfo
	total   uint64
	scratch []byte // frame assembly buffer, reused across flushes
	closed  bool
	err     error
}

// NewWriter writes the file header to w and returns a Writer.
func NewWriter(w io.Writer, opts WriterOptions) (*Writer, error) {
	n := opts.BlockRecords
	if n <= 0 {
		n = DefaultBlockRecords
	}
	tw := &Writer{
		w:      w,
		blockN: n,
		hwIdx:  make(map[failures.HWType]uint16),
		detIdx: make(map[string]uint32),
	}
	hdr := append([]byte(magic), 0, 0)
	le.PutUint16(hdr[len(magic):], Version)
	if err := tw.writeRaw(hdr); err != nil {
		return nil, fmt.Errorf("tracefmt: write header: %w", err)
	}
	return tw, nil
}

func (w *Writer) writeRaw(b []byte) error {
	n, err := w.w.Write(b)
	w.offset += int64(n)
	if err != nil {
		w.err = err
	}
	return err
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return int(w.total) + w.count }

// Write appends one record. Records are stored exactly as given — the
// format neither sorts nor validates beyond what it can represent: times
// within the int64 epoch-nanosecond range, system and node within
// int32, workload and cause within their enum ranges.
func (w *Writer) Write(r failures.Record) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("tracefmt: write after Close")
	}
	startN, err := epochNanos(r.Start, "start")
	if err != nil {
		return w.poison(err)
	}
	endN, err := epochNanos(r.End, "end")
	if err != nil {
		return w.poison(err)
	}
	if r.System < 0 || int64(r.System) > math.MaxInt32 {
		return w.poison(fmt.Errorf("tracefmt: system ID %d outside int32", r.System))
	}
	if r.Node < 0 || int64(r.Node) > math.MaxInt32 {
		return w.poison(fmt.Errorf("tracefmt: node ID %d outside int32", r.Node))
	}
	if r.Workload < 0 || r.Workload > 255 {
		return w.poison(fmt.Errorf("tracefmt: workload %d outside byte range", int(r.Workload)))
	}
	if r.Cause < 0 || r.Cause > 255 {
		return w.poison(fmt.Errorf("tracefmt: cause %d outside byte range", int(r.Cause)))
	}
	hw, err := w.hwIndex(r.HW)
	if err != nil {
		return w.poison(err)
	}
	det, err := w.detIndex(r.Detail)
	if err != nil {
		return w.poison(err)
	}

	if w.count == 0 {
		w.minStart, w.maxStart = startN, startN
	} else {
		if startN < w.minStart {
			w.minStart = startN
		}
		if startN > w.maxStart {
			w.maxStart = startN
		}
	}
	w.starts = appendI64(w.starts, startN)
	w.endDs = appendI64(w.endDs, endN-startN)
	w.systems = appendU32(w.systems, uint32(r.System))
	w.nodes = appendU32(w.nodes, uint32(r.Node))
	w.hws = appendU16(w.hws, hw)
	w.wls = append(w.wls, byte(r.Workload))
	w.causes = append(w.causes, byte(r.Cause))
	w.details = appendU32(w.details, det)
	w.count++
	if w.count >= w.blockN {
		return w.flushBlock()
	}
	return nil
}

func (w *Writer) poison(err error) error {
	w.err = err
	return err
}

// epochNanos converts a time to epoch nanoseconds, rejecting instants
// the int64 range cannot represent (UnixNano would silently wrap).
func epochNanos(t time.Time, what string) (int64, error) {
	n := t.UnixNano()
	if !time.Unix(0, n).Equal(t) {
		return 0, fmt.Errorf("tracefmt: %s time %v outside the epoch-nanosecond range", what, t)
	}
	return n, nil
}

func (w *Writer) hwIndex(hw failures.HWType) (uint16, error) {
	if i, ok := w.hwIdx[hw]; ok {
		return i, nil
	}
	if len(hw) > maxLabelLen {
		return 0, fmt.Errorf("tracefmt: hardware label %d bytes long, max %d", len(hw), maxLabelLen)
	}
	if len(w.hwAll) >= maxHWDict {
		return 0, fmt.Errorf("tracefmt: more than %d distinct hardware labels", maxHWDict)
	}
	i := uint16(len(w.hwAll))
	w.hwIdx[hw] = i
	w.hwAll = append(w.hwAll, hw)
	w.hwNew = append(w.hwNew, hw)
	return i, nil
}

func (w *Writer) detIndex(det string) (uint32, error) {
	if i, ok := w.detIdx[det]; ok {
		return i, nil
	}
	if len(det) > maxLabelLen {
		return 0, fmt.Errorf("tracefmt: detail label %d bytes long, max %d", len(det), maxLabelLen)
	}
	if len(w.detAll) >= maxDetailDict {
		return 0, fmt.Errorf("tracefmt: more than %d distinct detail labels", maxDetailDict)
	}
	i := uint32(len(w.detAll))
	w.detIdx[det] = i
	w.detAll = append(w.detAll, det)
	w.detNew = append(w.detNew, det)
	return i, nil
}

// flushBlock frames and writes the block under construction.
func (w *Writer) flushBlock() error {
	if w.count == 0 {
		return nil
	}
	p := w.scratch[:0]
	p = appendU32(p, uint32(w.count))
	p = appendI64(p, w.minStart)
	p = appendI64(p, w.maxStart)
	p = appendU16(p, uint16(len(w.hwNew)))
	for _, hw := range w.hwNew {
		p = appendU16(p, uint16(len(hw)))
		p = append(p, hw...)
	}
	p = appendU32(p, uint32(len(w.detNew)))
	for _, det := range w.detNew {
		p = appendU16(p, uint16(len(det)))
		p = append(p, det...)
	}
	p = append(p, w.starts...)
	p = append(p, w.endDs...)
	p = append(p, w.systems...)
	p = append(p, w.nodes...)
	p = append(p, w.hws...)
	p = append(p, w.wls...)
	p = append(p, w.causes...)
	p = append(p, w.details...)

	info := BlockInfo{
		Offset:   w.offset,
		Records:  w.count,
		MinStart: w.minStart,
		MaxStart: w.maxStart,
	}
	if err := w.writeFrame(frameBlock, p); err != nil {
		return err
	}
	w.scratch = p[:0]
	w.index = append(w.index, info)
	w.total += uint64(w.count)
	w.count = 0
	w.starts = w.starts[:0]
	w.endDs = w.endDs[:0]
	w.systems = w.systems[:0]
	w.nodes = w.nodes[:0]
	w.hws = w.hws[:0]
	w.wls = w.wls[:0]
	w.causes = w.causes[:0]
	w.details = w.details[:0]
	w.hwNew = w.hwNew[:0]
	w.detNew = w.detNew[:0]
	return nil
}

// writeFrame frames a payload with its kind, length and CRC-32C.
func (w *Writer) writeFrame(kind byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return w.poison(fmt.Errorf("tracefmt: frame payload %d bytes exceeds the %d cap (lower BlockRecords)",
			len(payload), maxFramePayload))
	}
	var hdr [frameSize]byte
	hdr[0] = kind
	le.PutUint32(hdr[1:], uint32(len(payload)))
	le.PutUint32(hdr[5:], crc32Checksum(payload))
	if err := w.writeRaw(hdr[:]); err != nil {
		return fmt.Errorf("tracefmt: write frame: %w", err)
	}
	if err := w.writeRaw(payload); err != nil {
		return fmt.Errorf("tracefmt: write frame: %w", err)
	}
	return nil
}

func crc32Checksum(p []byte) uint32 { return crc32Update(0, p) }

// Close flushes the final partial block, then writes the footer (total
// count, block index, complete dictionaries) and the trailer that lets
// a random-access reader locate the footer from the end of the file.
// Close does not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	footerOffset := w.offset
	p := w.scratch[:0]
	p = appendU64(p, w.total)
	p = appendU32(p, uint32(len(w.index)))
	for _, b := range w.index {
		p = appendU64(p, uint64(b.Offset))
		p = appendU32(p, uint32(b.Records))
		p = appendI64(p, b.MinStart)
		p = appendI64(p, b.MaxStart)
	}
	p = appendU16(p, uint16(len(w.hwAll)))
	for _, hw := range w.hwAll {
		p = appendU16(p, uint16(len(hw)))
		p = append(p, hw...)
	}
	p = appendU32(p, uint32(len(w.detAll)))
	for _, det := range w.detAll {
		p = appendU16(p, uint16(len(det)))
		p = append(p, det...)
	}
	if err := w.writeFrame(frameFooter, p); err != nil {
		return err
	}
	w.scratch = p[:0]
	var tr [trailerSize]byte
	le.PutUint64(tr[:], uint64(footerOffset))
	copy(tr[8:], trailerMagic)
	if err := w.writeRaw(tr[:]); err != nil {
		return fmt.Errorf("tracefmt: write trailer: %w", err)
	}
	w.closed = true
	return nil
}
