// Package tracefmt is the columnar binary failure-trace format that
// replaces CSV on the generate→analyze hot path at exascale trace sizes
// (CSV stays as the interchange format; see DESIGN.md). A trace file is a
// short header followed by CRC-framed blocks of a few thousand records
// each, a footer indexing every block, and a fixed-size trailer locating
// the footer from the end of the file.
//
// Within a block the records are stored as columns, not rows: all start
// times, then all end offsets, then the label columns. Times are int64
// epoch-nanoseconds in fixed-width little-endian words, so a scanner
// decodes a record with eight bounds-checked loads straight out of the
// block buffer — no parsing, no per-record allocation — and the layout
// reads equally well through an mmap'd byte slice (every column is a
// plain LE integer array at a computed offset; nothing is
// variable-width past the block's dictionary section). String labels
// (hardware type, failure detail) are dictionary-encoded: each block
// carries only the entries first seen in it, the footer repeats the
// complete tables, and records store fixed-width dictionary indexes.
//
// Every block header records the minimum and maximum start time of its
// records, duplicated in the footer index, so a time-range scan skips
// whole blocks — via the footer without even reading them (File), or by
// decoding nothing but the 20-byte block prefix on a pure stream
// (Scanner).
//
// Framing is defensive: each frame carries the CRC-32C of its payload,
// verified before any field is trusted, so torn writes and bit rot
// surface as ErrChecksum instead of silently corrupt records.
//
// Version compatibility: the header carries a format version. Readers
// accept exactly the versions they know (currently only Version); a
// bumped version is a hard error, not a best-effort parse, because a
// binary hot-path format must never guess. Producers needing forward
// compatibility should fall back to CSV, which every version of this
// repository reads.
package tracefmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Version is the trace-format version this package reads and writes.
const Version = 1

const (
	// magic opens every trace file, followed by the little-endian
	// uint16 format version.
	magic = "HPCTRC"
	// trailerMagic closes the file, preceded by the little-endian
	// uint64 offset of the footer frame.
	trailerMagic = "HPCE"

	headerSize  = len(magic) + 2 // magic + version
	frameSize   = 1 + 4 + 4      // kind + payload length + CRC-32C
	trailerSize = 8 + 4          // footer offset + trailer magic

	frameBlock  = 1
	frameFooter = 2

	// blockPrefixSize is the fixed head of a block payload: record
	// count, min start, max start.
	blockPrefixSize = 4 + 8 + 8

	// recordWidth is the total column width of one record:
	// start i64 + end-delta i64 + system i32 + node i32 +
	// hw u16 + workload u8 + cause u8 + detail u32.
	recordWidth = 8 + 8 + 4 + 4 + 2 + 1 + 1 + 4

	// maxFramePayload caps a frame before any of it is buffered, so a
	// corrupt or hostile length field cannot make a reader allocate
	// unboundedly.
	maxFramePayload = 1 << 30

	// DefaultBlockRecords is the writer's records-per-block default:
	// large enough that frame and dictionary overhead vanish, small
	// enough that a block stays cache-resident while it is decoded.
	DefaultBlockRecords = 8192

	// maxHWDict and maxDetailDict bound the dictionaries; indexes are
	// stored as u16 and u32 respectively.
	maxHWDict     = 1 << 16
	maxDetailDict = 1 << 31
	// maxLabelLen bounds one dictionary string.
	maxLabelLen = 1 << 16
)

// Sentinel errors; wrap details with %w around these.
var (
	// ErrBadMagic means the input does not start with a trace header
	// (or ends without the trailer): not a trace file.
	ErrBadMagic = errors.New("tracefmt: not a trace file")
	// ErrVersion means the file's format version is not supported.
	ErrVersion = errors.New("tracefmt: unsupported format version")
	// ErrChecksum means a frame's payload does not match its CRC-32C.
	ErrChecksum = errors.New("tracefmt: frame checksum mismatch")
	// ErrTruncated means the input ended inside a frame or before the
	// footer.
	ErrTruncated = errors.New("tracefmt: truncated trace file")
	// ErrFormat means a structurally invalid payload: impossible
	// lengths, out-of-range dictionary indexes, inconsistent counts.
	ErrFormat = errors.New("tracefmt: malformed trace file")
)

// castagnoli is the CRC-32C table shared by writer and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crc32Update(crc uint32, p []byte) uint32 { return crc32.Update(crc, castagnoli, p) }

// le is the byte order of every fixed-width field in the format.
var le = binary.LittleEndian

// BlockInfo describes one block as recorded in the footer index.
type BlockInfo struct {
	// Offset is the file offset of the block's frame header.
	Offset int64
	// Records is the number of records in the block.
	Records int
	// MinStart and MaxStart bound the block's record start times,
	// in epoch nanoseconds.
	MinStart, MaxStart int64
}

// overlaps reports whether the block can contain a start time in the
// inclusive window [fromN, toInc]. The caller passes
// math.MinInt64/MaxInt64 for open ends; scanBounds produces the pair
// from a ScanOptions. Inclusive bounds (rather than a half-open toN)
// keep a fully open window able to match math.MaxInt64 itself.
func (b BlockInfo) overlaps(fromN, toInc int64) bool {
	return b.MaxStart >= fromN && b.MinStart <= toInc
}

// appendUvarint-style helpers are deliberately absent: every field is
// fixed-width so that offsets are computable without scanning.

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendI64(b []byte, v int64) []byte { return appendU64(b, uint64(v)) }

// fieldReader cursors over a payload with bounds checking; the first
// out-of-range read poisons it, and callers check err once at the end of
// a parse instead of after every field.
type fieldReader struct {
	buf []byte
	off int
	err error
}

func (r *fieldReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrFormat, what, r.off)
	}
}

func (r *fieldReader) u16(what string) uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := le.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *fieldReader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := le.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *fieldReader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := le.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *fieldReader) i64(what string) int64 { return int64(r.u64(what)) }

func (r *fieldReader) bytes(n int, what string) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail(what)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}
