package tracefmt

import (
	"io"

	"hpcfail/internal/failures"
)

// SniffMagic reports whether prefix begins with the binary-trace magic.
// Callers feed it the first HeaderLen bytes of a file to decide between
// the binary reader and the CSV reader without trusting extensions.
func SniffMagic(prefix []byte) bool {
	return len(prefix) >= len(magic) && string(prefix[:len(magic)]) == magic
}

// HeaderLen is how many leading bytes SniffMagic needs.
const HeaderLen = len(magic)

// ReadDataset decodes an entire binary trace into a Dataset — the
// binary counterpart of failures.ReadCSV, for the in-memory analyses.
// Like ReadCSV it sorts on load, so a trace written in any record order
// loads into the identical dataset. Use a Scanner instead when the
// trace may not fit in memory.
func ReadDataset(r io.Reader) (*failures.Dataset, error) {
	s, err := NewScanner(r, ScanOptions{})
	if err != nil {
		return nil, err
	}
	var records []failures.Record
	for s.Scan() {
		records = append(records, s.Record())
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return failures.NewDataset(records)
}
