package tracefmt

import (
	"fmt"
	"io"
	"math"
	"time"

	"hpcfail/internal/failures"
)

// ScanOptions configures a Scanner.
type ScanOptions struct {
	// From and To bound the start times of the yielded records to
	// [From, To), like failures.Dataset.Between. A zero time leaves
	// that end open. Blocks whose [min, max] start-time index falls
	// entirely outside the window are skipped without decoding a
	// single record — and, when scanning through a File, without even
	// being read.
	From, To time.Time
}

// Scanner yields failure records from a binary trace one at a time,
// implementing the same Scan/Record/Err shape as failures.Scanner, so
// it plugs directly into engine.AnalyzeStream as a RecordSource. It
// also implements ScanBatch (engine.BatchSource), which hands the
// fused pipeline a whole decoded block per call.
//
// Records decode straight out of the current block's column buffer —
// eight fixed-width loads and two dictionary lookups — with no per-record
// allocation; the only steady-state allocations are one payload buffer
// reused across blocks and the dictionary strings, shared by every
// record that carries them.
type Scanner struct {
	next func() ([]byte, error) // yields CRC-verified block payloads; nil at end

	// Current block state: column base offsets into payload.
	payload                  []byte
	n, i                     int
	oStart, oEnd, oSys, oNod int
	oHW, oWL, oCause, oDet   int

	hwDict  []failures.HWType
	detDict []string
	// dictFixed marks dictionaries preloaded from a footer (File
	// scans): block dictionary deltas are then skipped, not appended,
	// since skipped blocks may already have contributed entries.
	dictFixed bool

	// fromN and toInc are the inclusive scan window bounds; see
	// scanBounds.
	fromN, toInc int64
	rec          failures.Record
	batch        []failures.Record // ScanBatch output buffer, reused
	scanned      int
	err          error
	done         bool
}

// NewScanner reads a binary trace sequentially from r — a file, a pipe,
// anything — without needing random access: dictionaries build
// incrementally from the per-block deltas and the footer is only used
// to confirm the file is complete. The reader must be positioned at the
// start of the trace.
func NewScanner(r io.Reader, opts ScanOptions) (*Scanner, error) {
	if err := readHeader(r); err != nil {
		return nil, err
	}
	s := newScanner(opts, false)
	var buf []byte
	s.next = func() ([]byte, error) {
		for {
			kind, payload, err := readFrame(r, &buf)
			if err != nil {
				return nil, err
			}
			switch kind {
			case frameBlock:
				return payload, nil
			case frameFooter:
				// The stream ends here; verify the trailer and EOF so
				// a truncated or over-long file cannot pass silently.
				var tr [trailerSize]byte
				if _, err := io.ReadFull(r, tr[:]); err != nil {
					return nil, fmt.Errorf("%w: reading trailer: %v", ErrTruncated, err)
				}
				if string(tr[8:]) != trailerMagic {
					return nil, fmt.Errorf("%w: bad trailer magic %q", ErrBadMagic, tr[8:])
				}
				if n, err := r.Read(make([]byte, 1)); n != 0 || err != io.EOF {
					return nil, fmt.Errorf("%w: data after trailer", ErrFormat)
				}
				return nil, nil
			default:
				return nil, fmt.Errorf("%w: unknown frame kind %d", ErrFormat, kind)
			}
		}
	}
	return s, nil
}

// readHeader consumes and verifies the file header. An input that ends
// inside the header but matches the magic as far as it goes is a
// truncated trace (ErrTruncated), not a foreign file (ErrBadMagic) —
// SniffMagic would have said yes to the same prefix.
func readHeader(r io.Reader) error {
	var hdr [headerSize]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		if (err == io.EOF || err == io.ErrUnexpectedEOF) &&
			n > 0 && string(hdr[:min(n, len(magic))]) == magic[:min(n, len(magic))] {
			return fmt.Errorf("%w: file ends inside the %d-byte header", ErrTruncated, headerSize)
		}
		return fmt.Errorf("%w: reading header: %v", ErrBadMagic, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return fmt.Errorf("%w: bad magic %q", ErrBadMagic, hdr[:len(magic)])
	}
	if v := le.Uint16(hdr[len(magic):]); v != Version {
		return fmt.Errorf("%w: file version %d, reader supports %d", ErrVersion, v, Version)
	}
	return nil
}

func newScanner(opts ScanOptions, dictFixed bool) *Scanner {
	s := &Scanner{dictFixed: dictFixed}
	s.fromN, s.toInc = scanBounds(opts)
	return s
}

// scanBounds converts a ScanOptions window to inclusive epoch-nanosecond
// bounds: a record matches iff fromN <= startN <= toInc. Open ends map
// to MinInt64/MaxInt64, so a fully open scan admits every representable
// start time including math.MaxInt64 (a half-open upper bound cannot
// express that). An impossible window — To at or before the epoch
// range, or From beyond it — collapses to the empty sentinel
// (MaxInt64, MinInt64), which no start time satisfies.
func scanBounds(opts ScanOptions) (fromN, toInc int64) {
	fromN, toInc = math.MinInt64, math.MaxInt64
	if !opts.From.IsZero() {
		if n, err := epochNanos(opts.From, "range from"); err == nil {
			fromN = n
		} else if opts.From.Unix() > 0 {
			// Beyond the representable range: nothing can match.
			return math.MaxInt64, math.MinInt64
		}
		// From before the representable range stays fully open.
	}
	if !opts.To.IsZero() {
		if n, err := epochNanos(opts.To, "range to"); err == nil {
			if n == math.MinInt64 {
				return math.MaxInt64, math.MinInt64
			}
			toInc = n - 1 // [From, To) excludes To itself
		} else if opts.To.Unix() < 0 {
			return math.MaxInt64, math.MinInt64
		}
		// To beyond the representable range stays fully open.
	}
	return fromN, toInc
}

// readFrame reads one frame from r into *buf (grown as needed, reused
// across calls) and returns its kind and CRC-verified payload.
func readFrame(r io.Reader, buf *[]byte) (byte, []byte, error) {
	var hdr [frameSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: file ends before the footer", ErrTruncated)
		}
		return 0, nil, fmt.Errorf("tracefmt: read frame: %w", err)
	}
	n := int(le.Uint32(hdr[1:]))
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: frame payload %d bytes exceeds the %d cap", ErrFormat, n, maxFramePayload)
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	p := (*buf)[:n]
	if _, err := io.ReadFull(r, p); err != nil {
		return 0, nil, fmt.Errorf("%w: frame body: %v", ErrTruncated, err)
	}
	if got, want := crc32Checksum(p), le.Uint32(hdr[5:]); got != want {
		return 0, nil, fmt.Errorf("%w: payload CRC %08x, frame says %08x", ErrChecksum, got, want)
	}
	return hdr[0], p, nil
}

// parseBlock validates a block payload's prefix and dictionary-delta
// section and returns the record count, the block's start-time bounds
// and the offset of the column section. When appendDicts is true the
// delta entries are appended to *hwDict / *detDict (sequential stream
// decode); otherwise they are skipped unread, because the caller's
// dictionaries were preloaded from the footer and skipped blocks may
// already have contributed entries.
func parseBlock(p []byte, hwDict *[]failures.HWType, detDict *[]string, appendDicts bool) (n int, minStart, maxStart int64, colOff int, err error) {
	fr := fieldReader{buf: p}
	n = int(fr.u32("record count"))
	minStart = fr.i64("min start")
	maxStart = fr.i64("max start")
	nHW := int(fr.u16("hw dict count"))
	for i := 0; i < nHW; i++ {
		l := int(fr.u16("hw label length"))
		b := fr.bytes(l, "hw label")
		if appendDicts && fr.err == nil {
			if len(*hwDict) >= maxHWDict {
				return 0, 0, 0, 0, fmt.Errorf("%w: hardware dictionary overflow", ErrFormat)
			}
			*hwDict = append(*hwDict, failures.HWType(b))
		}
	}
	nDet := int(fr.u32("detail dict count"))
	if nDet > maxDetailDict {
		return 0, 0, 0, 0, fmt.Errorf("%w: detail dictionary count %d", ErrFormat, nDet)
	}
	for i := 0; i < nDet; i++ {
		l := int(fr.u16("detail label length"))
		b := fr.bytes(l, "detail label")
		if appendDicts && fr.err == nil {
			if len(*detDict) >= maxDetailDict {
				return 0, 0, 0, 0, fmt.Errorf("%w: detail dictionary overflow", ErrFormat)
			}
			*detDict = append(*detDict, string(b))
		}
	}
	if fr.err != nil {
		return 0, 0, 0, 0, fr.err
	}
	if n < 0 || n > maxFramePayload/recordWidth {
		return 0, 0, 0, 0, fmt.Errorf("%w: block record count %d", ErrFormat, n)
	}
	if want := fr.off + n*recordWidth; want != len(p) {
		return 0, 0, 0, 0, fmt.Errorf("%w: block is %d bytes, columns need %d", ErrFormat, len(p), want)
	}
	return n, minStart, maxStart, fr.off, nil
}

// loadBlock parses a block payload: prefix, dictionary deltas, column
// offsets. It returns false when the block's start-time index proves no
// record can fall inside the scan window, leaving the column section
// undecoded.
func (s *Scanner) loadBlock(p []byte) (bool, error) {
	n, minStart, maxStart, colOff, err := parseBlock(p, &s.hwDict, &s.detDict, !s.dictFixed)
	if err != nil {
		return false, err
	}
	if !(BlockInfo{MinStart: minStart, MaxStart: maxStart}).overlaps(s.fromN, s.toInc) {
		return false, nil
	}
	s.payload = p
	s.n = n
	s.i = 0
	s.oStart = colOff
	s.oEnd = s.oStart + 8*n
	s.oSys = s.oEnd + 8*n
	s.oNod = s.oSys + 4*n
	s.oHW = s.oNod + 4*n
	s.oWL = s.oHW + 2*n
	s.oCause = s.oWL + n
	s.oDet = s.oCause + n
	return n > 0, nil
}

// decodeColumns appends the records at positions [lo, n) of a block's
// column section (starting at colOff in p) to dst, keeping only start
// times inside the inclusive [fromN, toInc] window. The dictionaries
// must already contain every index the block references.
func decodeColumns(p []byte, colOff, n, lo int, hwDict []failures.HWType, detDict []string, fromN, toInc int64, dst []failures.Record) ([]failures.Record, error) {
	oStart := colOff
	oEnd := oStart + 8*n
	oSys := oEnd + 8*n
	oNod := oSys + 4*n
	oHW := oNod + 4*n
	oWL := oHW + 2*n
	oCause := oWL + n
	oDet := oCause + n
	for i := lo; i < n; i++ {
		startN := int64(le.Uint64(p[oStart+8*i:]))
		if startN < fromN || startN > toInc {
			continue
		}
		endD := int64(le.Uint64(p[oEnd+8*i:]))
		hw := int(le.Uint16(p[oHW+2*i:]))
		det := int(le.Uint32(p[oDet+4*i:]))
		if hw >= len(hwDict) || det >= len(detDict) {
			return dst, fmt.Errorf("%w: dictionary index out of range (hw %d/%d, detail %d/%d)",
				ErrFormat, hw, len(hwDict), det, len(detDict))
		}
		dst = append(dst, failures.Record{
			System:   int(int32(le.Uint32(p[oSys+4*i:]))),
			Node:     int(int32(le.Uint32(p[oNod+4*i:]))),
			HW:       hwDict[hw],
			Workload: failures.Workload(p[oWL+i]),
			Cause:    failures.RootCause(p[oCause+i]),
			Detail:   detDict[det],
			Start:    time.Unix(0, startN).UTC(),
			End:      time.Unix(0, startN+endD).UTC(),
		})
	}
	return dst, nil
}

// Scan advances to the next record in the scan window, reporting false
// at the end of the trace or on the first error (see Err).
func (s *Scanner) Scan() bool {
	if s.done || s.err != nil {
		return false
	}
	for {
		for s.i < s.n {
			i := s.i
			s.i++
			p := s.payload
			startN := int64(le.Uint64(p[s.oStart+8*i:]))
			if startN < s.fromN || startN > s.toInc {
				continue
			}
			endD := int64(le.Uint64(p[s.oEnd+8*i:]))
			hw := int(le.Uint16(p[s.oHW+2*i:]))
			det := int(le.Uint32(p[s.oDet+4*i:]))
			if hw >= len(s.hwDict) || det >= len(s.detDict) {
				s.err = fmt.Errorf("%w: dictionary index out of range (hw %d/%d, detail %d/%d)",
					ErrFormat, hw, len(s.hwDict), det, len(s.detDict))
				s.done = true
				return false
			}
			s.rec = failures.Record{
				System:   int(int32(le.Uint32(p[s.oSys+4*i:]))),
				Node:     int(int32(le.Uint32(p[s.oNod+4*i:]))),
				HW:       s.hwDict[hw],
				Workload: failures.Workload(p[s.oWL+i]),
				Cause:    failures.RootCause(p[s.oCause+i]),
				Detail:   s.detDict[det],
				Start:    time.Unix(0, startN).UTC(),
				End:      time.Unix(0, startN+endD).UTC(),
			}
			s.scanned++
			return true
		}
		if !s.advanceBlock() {
			return false
		}
	}
}

// advanceBlock pulls frames until one loads a block intersecting the
// window; false means end of trace or error (both recorded on s).
func (s *Scanner) advanceBlock() bool {
	for {
		p, err := s.next()
		if err != nil {
			s.err = err
			s.done = true
			return false
		}
		if p == nil {
			s.done = true
			return false
		}
		ok, err := s.loadBlock(p)
		if err != nil {
			s.err = err
			s.done = true
			return false
		}
		if ok {
			return true
		}
	}
}

// ScanBatch yields the rest of the current block — every in-window
// record not yet consumed by Scan — or, at a block boundary, the next
// non-empty decoded block. It returns (nil, nil) at a clean end of
// trace. The returned slice is valid until the next ScanBatch or Scan
// call. Together with Scan/Record/Err this makes Scanner an
// engine.BatchSource, so the fused pipeline folds whole blocks into its
// streaming shards per dispatch.
func (s *Scanner) ScanBatch() ([]failures.Record, error) {
	if s.done || s.err != nil {
		return nil, s.err
	}
	for {
		if s.i < s.n {
			lo := s.i
			s.i = s.n
			batch, err := decodeColumns(s.payload, s.oStart, s.n, lo, s.hwDict, s.detDict, s.fromN, s.toInc, s.batch[:0])
			s.batch = batch
			if err != nil {
				s.err = err
				s.done = true
				return nil, err
			}
			if len(batch) > 0 {
				s.scanned += len(batch)
				s.rec = batch[len(batch)-1]
				return batch, nil
			}
			continue
		}
		if !s.advanceBlock() {
			return nil, s.err
		}
	}
}

// Record returns the record produced by the last successful Scan (after
// ScanBatch: the last record of the batch).
func (s *Scanner) Record() failures.Record { return s.rec }

// Scanned returns how many records have been yielded.
func (s *Scanner) Scanned() int { return s.scanned }

// Err returns the error that stopped the scan, if any. A clean end of
// trace is not an error.
func (s *Scanner) Err() error { return s.err }
