package tracefmt

import (
	"fmt"
	"io"
	"math"
	"time"

	"hpcfail/internal/failures"
)

// ScanOptions configures a Scanner.
type ScanOptions struct {
	// From and To bound the start times of the yielded records to
	// [From, To), like failures.Dataset.Between. A zero time leaves
	// that end open. Blocks whose [min, max] start-time index falls
	// entirely outside the window are skipped without decoding a
	// single record — and, when scanning through a File, without even
	// being read.
	From, To time.Time
}

// Scanner yields failure records from a binary trace one at a time,
// implementing the same Scan/Record/Err shape as failures.Scanner, so
// it plugs directly into engine.AnalyzeStream as a RecordSource.
//
// Records decode straight out of the current block's column buffer —
// eight fixed-width loads and two dictionary lookups — with no per-record
// allocation; the only steady-state allocations are one payload buffer
// reused across blocks and the dictionary strings, shared by every
// record that carries them.
type Scanner struct {
	next func() ([]byte, error) // yields CRC-verified block payloads; nil at end

	// Current block state: column base offsets into payload.
	payload                  []byte
	n, i                     int
	oStart, oEnd, oSys, oNod int
	oHW, oWL, oCause, oDet   int

	hwDict  []failures.HWType
	detDict []string
	// dictFixed marks dictionaries preloaded from a footer (File
	// scans): block dictionary deltas are then skipped, not appended,
	// since skipped blocks may already have contributed entries.
	dictFixed bool

	fromN, toN int64
	rec        failures.Record
	scanned    int
	err        error
	done       bool
}

// NewScanner reads a binary trace sequentially from r — a file, a pipe,
// anything — without needing random access: dictionaries build
// incrementally from the per-block deltas and the footer is only used
// to confirm the file is complete. The reader must be positioned at the
// start of the trace.
func NewScanner(r io.Reader, opts ScanOptions) (*Scanner, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadMagic, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadMagic, hdr[:len(magic)])
	}
	if v := le.Uint16(hdr[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, reader supports %d", ErrVersion, v, Version)
	}
	s := newScanner(opts, false)
	var buf []byte
	s.next = func() ([]byte, error) {
		for {
			kind, payload, err := readFrame(r, &buf)
			if err != nil {
				return nil, err
			}
			switch kind {
			case frameBlock:
				return payload, nil
			case frameFooter:
				// The stream ends here; verify the trailer and EOF so
				// a truncated or over-long file cannot pass silently.
				var tr [trailerSize]byte
				if _, err := io.ReadFull(r, tr[:]); err != nil {
					return nil, fmt.Errorf("%w: reading trailer: %v", ErrTruncated, err)
				}
				if string(tr[8:]) != trailerMagic {
					return nil, fmt.Errorf("%w: bad trailer magic %q", ErrBadMagic, tr[8:])
				}
				if n, err := r.Read(make([]byte, 1)); n != 0 || err != io.EOF {
					return nil, fmt.Errorf("%w: data after trailer", ErrFormat)
				}
				return nil, nil
			default:
				return nil, fmt.Errorf("%w: unknown frame kind %d", ErrFormat, kind)
			}
		}
	}
	return s, nil
}

func newScanner(opts ScanOptions, dictFixed bool) *Scanner {
	s := &Scanner{
		fromN:     math.MinInt64,
		toN:       math.MaxInt64,
		dictFixed: dictFixed,
	}
	if !opts.From.IsZero() {
		if n, err := epochNanos(opts.From, "range from"); err == nil {
			s.fromN = n
		} else if opts.From.Unix() > 0 {
			// Beyond the representable range: nothing can match.
			s.fromN = math.MaxInt64
		}
	}
	if !opts.To.IsZero() {
		if n, err := epochNanos(opts.To, "range to"); err == nil {
			s.toN = n
		} else if opts.To.Unix() < 0 {
			s.toN = math.MinInt64
		}
	}
	return s
}

// readFrame reads one frame from r into *buf (grown as needed, reused
// across calls) and returns its kind and CRC-verified payload.
func readFrame(r io.Reader, buf *[]byte) (byte, []byte, error) {
	var hdr [frameSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: file ends before the footer", ErrTruncated)
		}
		return 0, nil, fmt.Errorf("tracefmt: read frame: %w", err)
	}
	n := int(le.Uint32(hdr[1:]))
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: frame payload %d bytes exceeds the %d cap", ErrFormat, n, maxFramePayload)
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	p := (*buf)[:n]
	if _, err := io.ReadFull(r, p); err != nil {
		return 0, nil, fmt.Errorf("%w: frame body: %v", ErrTruncated, err)
	}
	if got, want := crc32Checksum(p), le.Uint32(hdr[5:]); got != want {
		return 0, nil, fmt.Errorf("%w: payload CRC %08x, frame says %08x", ErrChecksum, got, want)
	}
	return hdr[0], p, nil
}

// loadBlock parses a block payload: prefix, dictionary deltas, column
// offsets. It returns false when the block's start-time index proves no
// record can fall inside the scan window, leaving the column section
// undecoded.
func (s *Scanner) loadBlock(p []byte) (bool, error) {
	fr := fieldReader{buf: p}
	n := int(fr.u32("record count"))
	minStart := fr.i64("min start")
	maxStart := fr.i64("max start")
	nHW := int(fr.u16("hw dict count"))
	for i := 0; i < nHW; i++ {
		l := int(fr.u16("hw label length"))
		b := fr.bytes(l, "hw label")
		if !s.dictFixed && fr.err == nil {
			if len(s.hwDict) >= maxHWDict {
				return false, fmt.Errorf("%w: hardware dictionary overflow", ErrFormat)
			}
			s.hwDict = append(s.hwDict, failures.HWType(b))
		}
	}
	nDet := int(fr.u32("detail dict count"))
	if nDet > maxDetailDict {
		return false, fmt.Errorf("%w: detail dictionary count %d", ErrFormat, nDet)
	}
	for i := 0; i < nDet; i++ {
		l := int(fr.u16("detail label length"))
		b := fr.bytes(l, "detail label")
		if !s.dictFixed && fr.err == nil {
			if len(s.detDict) >= maxDetailDict {
				return false, fmt.Errorf("%w: detail dictionary overflow", ErrFormat)
			}
			s.detDict = append(s.detDict, string(b))
		}
	}
	if fr.err != nil {
		return false, fr.err
	}
	if n < 0 || n > maxFramePayload/recordWidth {
		return false, fmt.Errorf("%w: block record count %d", ErrFormat, n)
	}
	if want := fr.off + n*recordWidth; want != len(p) {
		return false, fmt.Errorf("%w: block is %d bytes, columns need %d", ErrFormat, len(p), want)
	}
	if !(BlockInfo{MinStart: minStart, MaxStart: maxStart}).overlaps(s.fromN, s.toN) {
		return false, nil
	}
	s.payload = p
	s.n = n
	s.i = 0
	s.oStart = fr.off
	s.oEnd = s.oStart + 8*n
	s.oSys = s.oEnd + 8*n
	s.oNod = s.oSys + 4*n
	s.oHW = s.oNod + 4*n
	s.oWL = s.oHW + 2*n
	s.oCause = s.oWL + n
	s.oDet = s.oCause + n
	return n > 0, nil
}

// Scan advances to the next record in the scan window, reporting false
// at the end of the trace or on the first error (see Err).
func (s *Scanner) Scan() bool {
	if s.done || s.err != nil {
		return false
	}
	for {
		for s.i < s.n {
			i := s.i
			s.i++
			p := s.payload
			startN := int64(le.Uint64(p[s.oStart+8*i:]))
			if startN < s.fromN || startN >= s.toN {
				continue
			}
			endD := int64(le.Uint64(p[s.oEnd+8*i:]))
			hw := int(le.Uint16(p[s.oHW+2*i:]))
			det := int(le.Uint32(p[s.oDet+4*i:]))
			if hw >= len(s.hwDict) || det >= len(s.detDict) {
				s.err = fmt.Errorf("%w: dictionary index out of range (hw %d/%d, detail %d/%d)",
					ErrFormat, hw, len(s.hwDict), det, len(s.detDict))
				s.done = true
				return false
			}
			s.rec = failures.Record{
				System:   int(int32(le.Uint32(p[s.oSys+4*i:]))),
				Node:     int(int32(le.Uint32(p[s.oNod+4*i:]))),
				HW:       s.hwDict[hw],
				Workload: failures.Workload(p[s.oWL+i]),
				Cause:    failures.RootCause(p[s.oCause+i]),
				Detail:   s.detDict[det],
				Start:    time.Unix(0, startN).UTC(),
				End:      time.Unix(0, startN+endD).UTC(),
			}
			s.scanned++
			return true
		}
		p, err := s.next()
		if err != nil {
			s.err = err
			s.done = true
			return false
		}
		if p == nil {
			s.done = true
			return false
		}
		if _, err := s.loadBlock(p); err != nil {
			s.err = err
			s.done = true
			return false
		}
	}
}

// Record returns the record produced by the last successful Scan.
func (s *Scanner) Record() failures.Record { return s.rec }

// Scanned returns how many records have been yielded.
func (s *Scanner) Scanned() int { return s.scanned }

// Err returns the error that stopped the scan, if any. A clean end of
// trace is not an error.
func (s *Scanner) Err() error { return s.err }
