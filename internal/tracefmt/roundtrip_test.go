package tracefmt

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"hpcfail/internal/failures"
	"hpcfail/internal/lanl"
)

// seed1CSVSHA is the pinned sha256 of the seed-1 LANL trace in CSV form
// (EXPERIMENTS.md, "Frozen oracle"). The binary format is only allowed
// into the hot path because converting CSV → bin → CSV reproduces this
// digest byte-for-byte.
const seed1CSVSHA = "c77f2f93b9f5e8fb9929fc0de127e3ca20b3f9cb78b6a7a306b822364c2bdb1e"

func csvBytes(t *testing.T, write func(emit func(failures.Record) error) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := failures.NewCSVWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := write(cw.Write); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSeed1CSVBinCSVRoundTrip is the frozen-oracle gate for the binary
// format: generate the seed-1 trace, encode it to the binary format,
// decode it back, re-emit CSV, and demand the pinned digest.
func TestSeed1CSVBinCSVRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the full seed-1 trace")
	}
	gen := lanl.NewGenerator(lanl.Config{Seed: 1})

	// Reference CSV from the sorted dataset — the exact bytes the pinned
	// digest was taken over (lanlgen's default path).
	seed1, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	direct := csvBytes(t, func(emit func(failures.Record) error) error {
		for _, r := range seed1.Records() {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	})
	if got := hex.EncodeToString(func() []byte { h := sha256.Sum256(direct); return h[:] }()); got != seed1CSVSHA {
		t.Fatalf("seed-1 CSV digest drifted before the binary format was even involved:\n got %s\nwant %s", got, seed1CSVSHA)
	}

	// CSV → records → bin: parse the CSV (not the generator) so the CSV
	// parse/format pair is inside the loop being tested.
	ds, err := failures.ReadCSV(bytes.NewReader(direct))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	bw, err := NewWriter(&bin, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Records() {
		if err := bw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}

	// bin → CSV via the streaming scanner.
	s, err := NewScanner(bytes.NewReader(bin.Bytes()), ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := csvBytes(t, func(emit func(failures.Record) error) error {
		for s.Scan() {
			if err := emit(s.Record()); err != nil {
				return err
			}
		}
		return s.Err()
	})
	if !bytes.Equal(out, direct) {
		t.Fatalf("CSV → bin → CSV is not byte-identical: %d bytes in, %d bytes out", len(direct), len(out))
	}
	h := sha256.Sum256(out)
	if got := hex.EncodeToString(h[:]); got != seed1CSVSHA {
		t.Fatalf("round-tripped digest %s, want pinned %s", got, seed1CSVSHA)
	}
	t.Logf("seed-1 round trip: %d records, CSV %d bytes, bin %d bytes (%.2fx smaller)",
		ds.Len(), len(direct), bin.Len(), float64(len(direct))/float64(bin.Len()))
}
