package failures

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestScannerMatchesReadCSV checks that streaming over a mixed good/bad
// input yields exactly the rows and row errors of the materializing
// reader, in both modes.
func TestScannerMatchesReadCSV(t *testing.T) {
	d, rowErrs, err := ReadCSVWith(strings.NewReader(lenientInput), ReadCSVOptions{SkipMalformed: true})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(strings.NewReader(lenientInput), ReadCSVOptions{SkipMalformed: true})
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	var lines []int
	for sc.Scan() {
		got = append(got, sc.Record())
		lines = append(lines, sc.Line())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != d.Len() || sc.Scanned() != d.Len() {
		t.Fatalf("scanner yielded %d records (Scanned=%d), reader kept %d", len(got), sc.Scanned(), d.Len())
	}
	// lenientInput is already in time order, so dataset order == scan order.
	for i, rec := range got {
		if rec != d.At(i) {
			t.Errorf("record %d: scanner %+v != reader %+v", i, rec, d.At(i))
		}
	}
	wantLines := []int{2, 4, 6, 8}
	for i, want := range wantLines {
		if lines[i] != want {
			t.Errorf("record %d scanned from line %d, want %d", i, lines[i], want)
		}
	}
	if len(sc.RowErrors()) != len(rowErrs) {
		t.Fatalf("scanner row errors %v, reader %v", sc.RowErrors(), rowErrs)
	}
	for i := range rowErrs {
		if sc.RowErrors()[i].Line != rowErrs[i].Line {
			t.Errorf("row error %d: scanner line %d, reader line %d",
				i, sc.RowErrors()[i].Line, rowErrs[i].Line)
		}
	}

	// Strict mode stops at the first malformed row (line 3) with its line
	// in the error, after yielding the one good row before it.
	strict, err := NewScanner(strings.NewReader(lenientInput), ReadCSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for strict.Scan() {
		n++
	}
	if n != 1 {
		t.Fatalf("strict scanner yielded %d records before aborting, want 1", n)
	}
	if err := strict.Err(); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("strict scanner error = %v, want mention of line 3", err)
	}
	if strict.Scan() {
		t.Fatal("Scan after fatal error should keep returning false")
	}
}

// TestScannerHeaderErrors mirrors the reader's structural failures.
func TestScannerHeaderErrors(t *testing.T) {
	for _, input := range []string{"", "a,b,c,d,e,f,g,h\n"} {
		if _, err := NewScanner(strings.NewReader(input), ReadCSVOptions{}); err == nil {
			t.Errorf("NewScanner(%q): want header error", input)
		}
	}
}

// TestWriteCSVSubsecondRoundTrip is the regression test for the timestamp
// precision bug: WriteCSV used time.RFC3339, silently truncating
// sub-second precision so Write → Read was not an identity. RFC3339Nano
// preserves it (and writes whole seconds identically to before).
func TestWriteCSVSubsecondRoundTrip(t *testing.T) {
	base := time.Date(2004, 7, 1, 10, 30, 0, 123456789, time.UTC)
	whole := time.Date(2004, 7, 1, 11, 30, 0, 0, time.UTC)
	recs := []Record{
		{System: 1, Node: 0, HW: "E", Workload: WorkloadCompute, Cause: CauseHardware,
			Start: base, End: base.Add(90*time.Minute + 250*time.Millisecond)},
		{System: 1, Node: 1, HW: "E", Workload: WorkloadCompute, Cause: CauseSoftware,
			Start: whole, End: whole.Add(time.Hour)},
	}
	d, err := NewDataset(recs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip kept %d of %d records", back.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		want, got := d.At(i), back.At(i)
		if !got.Start.Equal(want.Start) || !got.End.Equal(want.End) {
			t.Errorf("record %d: round-tripped %v–%v, want %v–%v",
				i, got.Start, got.End, want.Start, want.End)
		}
		got.Start, got.End = want.Start, want.End
		if got != want {
			t.Errorf("record %d: non-time fields changed: %+v != %+v", i, got, want)
		}
	}
	// Whole-second timestamps keep the exact pre-existing rendering.
	if !strings.Contains(buf.String(), "2004-07-01T10:30:00.123456789Z") {
		t.Errorf("sub-second timestamp not preserved in output:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "2004-07-01T12:30:00Z") {
		t.Errorf("whole-second timestamp not rendered as plain RFC 3339:\n%s", buf.String())
	}
}

// TestRowErrorLineMultilineQuotedField is the regression test for the
// line-number bug: the previous reader counted one line per CSV record,
// so a quoted field containing newlines made every subsequent RowError
// point at the wrong input line. FieldPos reports true lines.
func TestRowErrorLineMultilineQuotedField(t *testing.T) {
	// Line 1: header. Lines 2–4: one good record whose quoted detail
	// field spans three input lines. Line 5: a good record. Line 6: a
	// malformed one (bad cause). The record-counting reader reported the
	// malformed row as line 4.
	input := "system,node,hw,workload,cause,detail,start,end\n" +
		"1,0,E,compute,Hardware,\"multi\nline\ndetail\",2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n" +
		"1,1,E,compute,Software,,2000-01-01T02:00:00Z,2000-01-01T03:00:00Z\n" +
		"1,2,E,compute,Bogus,,2000-01-01T04:00:00Z,2000-01-01T05:00:00Z\n"
	d, rowErrs, err := ReadCSVWith(strings.NewReader(input), ReadCSVOptions{SkipMalformed: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("kept %d records, want 2", d.Len())
	}
	if d.At(0).Detail != "multi\nline\ndetail" {
		t.Fatalf("multi-line detail = %q", d.At(0).Detail)
	}
	if len(rowErrs) != 1 || rowErrs[0].Line != 6 {
		t.Fatalf("row errors = %v, want one at line 6", rowErrs)
	}
	// The scanner agrees, both for yielded lines and the skipped row.
	sc, err := NewScanner(strings.NewReader(input), ReadCSVOptions{SkipMalformed: true})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for sc.Scan() {
		lines = append(lines, sc.Line())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0] != 2 || lines[1] != 5 {
		t.Fatalf("scanned record lines = %v, want [2 5]", lines)
	}
	if len(sc.RowErrors()) != 1 || sc.RowErrors()[0].Line != 6 {
		t.Fatalf("scanner row errors = %v, want one at line 6", sc.RowErrors())
	}
	// Strict mode names the true line too.
	if _, err := ReadCSV(strings.NewReader(input)); err == nil || !strings.Contains(err.Error(), "line 6") {
		t.Fatalf("strict error = %v, want mention of line 6", err)
	}
}
