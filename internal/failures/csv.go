package failures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the column layout of the on-disk format. It mirrors the
// essential fields of the released LANL data.
var csvHeader = []string{
	"system", "node", "hw", "workload", "cause", "detail", "start", "end",
}

// WriteCSV encodes the dataset in the repository's CSV format: one header
// row followed by one row per record, timestamps in RFC 3339 with
// nanosecond precision where present (RFC3339Nano omits trailing zeros,
// so whole-second timestamps are written exactly as before). The reader
// accepts both, making Write → Read an identity on any dataset.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw, err := NewCSVWriter(w)
	if err != nil {
		return err
	}
	for i := 0; i < d.Len(); i++ {
		if err := cw.Write(d.At(i)); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// A CSVWriter encodes records one at a time in the repository's CSV
// format, so a producer can stream a trace to disk without ever holding a
// Dataset in memory. It is the record-at-a-time counterpart of WriteCSV
// (which is implemented on top of it): the header goes out at
// construction, each Write appends one row, and Flush must be called
// after the last record.
type CSVWriter struct {
	cw  *csv.Writer
	row [8]string
	n   int
}

// NewCSVWriter returns a CSVWriter after writing the header row.
func NewCSVWriter(w io.Writer) (*CSVWriter, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return nil, fmt.Errorf("write csv header: %w", err)
	}
	return &CSVWriter{cw: cw}, nil
}

// Write appends one record row. The row buffer is reused across calls.
func (w *CSVWriter) Write(r Record) error {
	w.row = [8]string{
		strconv.Itoa(r.System),
		strconv.Itoa(r.Node),
		string(r.HW),
		r.Workload.String(),
		r.Cause.String(),
		r.Detail,
		r.Start.UTC().Format(time.RFC3339Nano),
		r.End.UTC().Format(time.RFC3339Nano),
	}
	if err := w.cw.Write(w.row[:]); err != nil {
		return fmt.Errorf("write csv row %d: %w", w.n, err)
	}
	w.n++
	return nil
}

// Count returns the number of record rows written so far.
func (w *CSVWriter) Count() int { return w.n }

// Flush drains buffered rows to the underlying writer and reports any
// write error.
func (w *CSVWriter) Flush() error {
	w.cw.Flush()
	if err := w.cw.Error(); err != nil {
		return fmt.Errorf("flush csv: %w", err)
	}
	return nil
}

// RowError describes one malformed CSV row skipped in lenient mode.
type RowError struct {
	// Line is the 1-based line number in the input (the header is 1).
	Line int
	// Err is the parse or validation failure.
	Err error
}

// Error implements error.
func (e RowError) Error() string { return fmt.Sprintf("row %d: %v", e.Line, e.Err) }

// Unwrap exposes the underlying cause.
func (e RowError) Unwrap() error { return e.Err }

// ReadCSVOptions controls ReadCSVWith.
type ReadCSVOptions struct {
	// SkipMalformed collects malformed rows as RowErrors and keeps
	// loading instead of aborting on the first bad row. Structural
	// failures — an unreadable or mismatched header — still abort.
	SkipMalformed bool
}

// ReadCSV decodes a dataset from the repository's CSV format, aborting
// on the first malformed row.
func ReadCSV(r io.Reader) (*Dataset, error) {
	d, _, err := ReadCSVWith(r, ReadCSVOptions{})
	return d, err
}

// ReadCSVWith decodes a dataset from the repository's CSV format. In
// strict mode (the default) the first malformed row aborts the load. In
// lenient mode malformed rows — bad CSV framing, unparseable fields, or
// records failing validation — are skipped and reported as RowErrors
// with their true input line numbers, and every well-formed row is kept.
// It is the materializing counterpart of Scanner, which shares all the
// parsing and error handling but yields records one at a time.
func ReadCSVWith(r io.Reader, opts ReadCSVOptions) (*Dataset, []RowError, error) {
	sc, err := NewScanner(r, opts)
	if err != nil {
		return nil, nil, err
	}
	var records []Record
	for sc.Scan() {
		records = append(records, sc.Record())
	}
	if err := sc.Err(); err != nil {
		return nil, sc.RowErrors(), err
	}
	d, err := NewDataset(records)
	if err != nil {
		return nil, sc.RowErrors(), err
	}
	return d, sc.RowErrors(), nil
}

func parseRow(row []string) (Record, error) {
	system, err := strconv.Atoi(row[0])
	if err != nil {
		return Record{}, fmt.Errorf("system: %w", err)
	}
	node, err := strconv.Atoi(row[1])
	if err != nil {
		return Record{}, fmt.Errorf("node: %w", err)
	}
	workload, err := ParseWorkload(row[3])
	if err != nil {
		return Record{}, err
	}
	cause, err := ParseRootCause(row[4])
	if err != nil {
		return Record{}, err
	}
	start, err := time.Parse(time.RFC3339, row[6])
	if err != nil {
		return Record{}, fmt.Errorf("start: %w", err)
	}
	end, err := time.Parse(time.RFC3339, row[7])
	if err != nil {
		return Record{}, fmt.Errorf("end: %w", err)
	}
	return Record{
		System:   system,
		Node:     node,
		HW:       HWType(row[2]),
		Workload: workload,
		Cause:    cause,
		Detail:   row[5],
		Start:    start,
		End:      end,
	}, nil
}
