package failures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the column layout of the on-disk format. It mirrors the
// essential fields of the released LANL data.
var csvHeader = []string{
	"system", "node", "hw", "workload", "cause", "detail", "start", "end",
}

// WriteCSV encodes the dataset in the repository's CSV format: one header
// row followed by one row per record, timestamps in RFC 3339.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	for i := 0; i < d.Len(); i++ {
		r := d.At(i)
		row := []string{
			strconv.Itoa(r.System),
			strconv.Itoa(r.Node),
			string(r.HW),
			r.Workload.String(),
			r.Cause.String(),
			r.Detail,
			r.Start.UTC().Format(time.RFC3339),
			r.End.UTC().Format(time.RFC3339),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("flush csv: %w", err)
	}
	return nil
}

// ReadCSV decodes a dataset from the repository's CSV format.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("read csv: column %d is %q, want %q", i, header[i], want)
		}
	}
	var records []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read csv line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("read csv line %d: %w", line, err)
		}
		records = append(records, rec)
	}
	return NewDataset(records)
}

func parseRow(row []string) (Record, error) {
	system, err := strconv.Atoi(row[0])
	if err != nil {
		return Record{}, fmt.Errorf("system: %w", err)
	}
	node, err := strconv.Atoi(row[1])
	if err != nil {
		return Record{}, fmt.Errorf("node: %w", err)
	}
	workload, err := ParseWorkload(row[3])
	if err != nil {
		return Record{}, err
	}
	cause, err := ParseRootCause(row[4])
	if err != nil {
		return Record{}, err
	}
	start, err := time.Parse(time.RFC3339, row[6])
	if err != nil {
		return Record{}, fmt.Errorf("start: %w", err)
	}
	end, err := time.Parse(time.RFC3339, row[7])
	if err != nil {
		return Record{}, fmt.Errorf("end: %w", err)
	}
	return Record{
		System:   system,
		Node:     node,
		HW:       HWType(row[2]),
		Workload: workload,
		Cause:    cause,
		Detail:   row[5],
		Start:    start,
		End:      end,
	}, nil
}
