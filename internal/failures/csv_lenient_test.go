package failures

import (
	"errors"
	"strings"
	"testing"
)

// lenientInput mixes well-formed rows with malformed ones: a bad cause
// (line 3), a wrong field count (line 5) and an unparseable start time
// (line 7). Good rows sit on lines 2, 4, 6 and 8.
const lenientInput = "system,node,hw,workload,cause,detail,start,end\n" +
	"1,0,E,compute,Hardware,,2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n" +
	"1,1,E,compute,Bogus,,2000-01-01T02:00:00Z,2000-01-01T03:00:00Z\n" +
	"1,2,E,compute,Software,,2000-01-01T04:00:00Z,2000-01-01T05:00:00Z\n" +
	"1,3,E\n" +
	"1,4,E,compute,Network,,2000-01-01T06:00:00Z,2000-01-01T07:00:00Z\n" +
	"1,5,E,compute,Hardware,,not-a-time,2000-01-01T09:00:00Z\n" +
	"1,6,E,graphics,Human,,2000-01-01T10:00:00Z,2000-01-01T11:00:00Z\n"

func TestReadCSVLenientSkipsMalformedRows(t *testing.T) {
	d, rowErrs, err := ReadCSVWith(strings.NewReader(lenientInput), ReadCSVOptions{SkipMalformed: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4 {
		t.Fatalf("kept %d records, want 4", d.Len())
	}
	wantNodes := []int{0, 2, 4, 6}
	for i, want := range wantNodes {
		if got := d.At(i).Node; got != want {
			t.Errorf("record %d: node = %d, want %d", i, got, want)
		}
	}
	wantLines := []int{3, 5, 7}
	if len(rowErrs) != len(wantLines) {
		t.Fatalf("row errors = %v, want %d of them", rowErrs, len(wantLines))
	}
	for i, want := range wantLines {
		if rowErrs[i].Line != want {
			t.Errorf("row error %d: line = %d, want %d", i, rowErrs[i].Line, want)
		}
		if rowErrs[i].Unwrap() == nil {
			t.Errorf("row error %d: no underlying cause", i)
		}
	}
}

func TestReadCSVStrictStillAborts(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(lenientInput)); err == nil {
		t.Fatal("strict read of malformed input: want error")
	}
	d, rowErrs, err := ReadCSVWith(strings.NewReader(lenientInput), ReadCSVOptions{})
	if err == nil {
		t.Fatal("strict ReadCSVWith of malformed input: want error")
	}
	if d != nil || rowErrs != nil {
		t.Fatalf("strict failure returned d=%v rowErrs=%v, want nil", d, rowErrs)
	}
}

func TestReadCSVLenientHeaderStillAborts(t *testing.T) {
	for _, input := range []string{"", "a,b,c,d,e,f,g,h\n"} {
		if _, _, err := ReadCSVWith(strings.NewReader(input), ReadCSVOptions{SkipMalformed: true}); err == nil {
			t.Errorf("lenient read of %q: want header error", input)
		}
	}
}

func TestReadCSVLenientCleanInput(t *testing.T) {
	clean := "system,node,hw,workload,cause,detail,start,end\n" +
		"1,0,E,compute,Hardware,,2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n"
	d, rowErrs, err := ReadCSVWith(strings.NewReader(clean), ReadCSVOptions{SkipMalformed: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || len(rowErrs) != 0 {
		t.Fatalf("clean input: len=%d rowErrs=%v", d.Len(), rowErrs)
	}
}

func TestRowErrorFormatting(t *testing.T) {
	cause := errors.New("boom")
	re := RowError{Line: 7, Err: cause}
	if got := re.Error(); !strings.Contains(got, "7") || !strings.Contains(got, "boom") {
		t.Fatalf("Error() = %q", got)
	}
	if !errors.Is(re, cause) {
		t.Fatal("errors.Is should see the wrapped cause")
	}
}
