package failures

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
)

// Scanner reads failure records from the repository's CSV format one at a
// time, without materializing a Dataset — the bounded-memory ingest path
// for traces larger than RAM. It shares the row parser and validation
// with ReadCSV, and both the strict and lenient modes of ReadCSVWith:
// strict stops at the first malformed row, lenient skips it and records a
// RowError carrying the row's true input line (multi-line quoted fields
// included, via csv.Reader.FieldPos).
//
// Records are yielded in file order; unlike NewDataset, the Scanner does
// not sort. Consumers that need time order (e.g. streaming interarrival
// accumulators) should note that WriteCSV emits datasets in start-time
// order, so round-tripped traces are already sorted.
//
// Usage:
//
//	sc, err := NewScanner(r, ReadCSVOptions{SkipMalformed: true})
//	for sc.Scan() {
//	    rec := sc.Record()
//	    ...
//	}
//	if err := sc.Err(); err != nil { ... }
type Scanner struct {
	cr      *csv.Reader
	lenient bool
	ctx     context.Context

	rec     Record
	line    int
	scanned int
	rowErrs []RowError
	err     error
	done    bool
}

// NewScanner builds a Scanner over r, reading and checking the header
// immediately. Structural failures — an unreadable or mismatched header —
// surface here, in both modes.
func NewScanner(r io.Reader, opts ReadCSVOptions) (*Scanner, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("read csv: column %d is %q, want %q", i, header[i], want)
		}
	}
	return &Scanner{cr: cr, lenient: opts.SkipMalformed}, nil
}

// NewScannerContext is NewScanner with cancellation: once ctx is done,
// the next Scan stops and Err reports ctx.Err() (use errors.Is against
// context.Canceled / DeadlineExceeded). The check runs before every row,
// so a dropped ingest connection or a server shutdown aborts a scan
// mid-stream promptly instead of draining the reader. Records already
// yielded are unaffected, so accumulators folded from a cancelled scan
// remain consistent and mergeable.
func NewScannerContext(ctx context.Context, r io.Reader, opts ReadCSVOptions) (*Scanner, error) {
	sc, err := NewScanner(r, opts)
	if err != nil {
		return nil, err
	}
	sc.ctx = ctx
	return sc, nil
}

// Scan advances to the next well-formed record, reporting false at end of
// input or on a fatal error (see Err). In lenient mode malformed rows are
// skipped and recorded as RowErrors rather than stopping the scan.
func (s *Scanner) Scan() bool {
	if s.done {
		return false
	}
	for {
		if s.ctx != nil {
			if err := s.ctx.Err(); err != nil {
				s.err = err
				s.done = true
				return false
			}
		}
		row, err := s.cr.Read()
		if err == io.EOF {
			s.done = true
			return false
		}
		if err != nil {
			var perr *csv.ParseError
			if s.lenient && errors.As(err, &perr) {
				// Framing errors report their own line; the reader
				// resumes on the next row.
				s.rowErrs = append(s.rowErrs, RowError{Line: perr.Line, Err: err})
				continue
			}
			s.err = fmt.Errorf("read csv: %w", err)
			s.done = true
			return false
		}
		// The true input line of this row, independent of how many
		// newlines earlier quoted fields contained.
		line, _ := s.cr.FieldPos(0)
		rec, err := parseRow(row)
		if err == nil {
			err = rec.Validate()
		}
		if err != nil {
			if s.lenient {
				s.rowErrs = append(s.rowErrs, RowError{Line: line, Err: err})
				continue
			}
			s.err = fmt.Errorf("read csv line %d: %w", line, err)
			s.done = true
			return false
		}
		s.rec = rec
		s.line = line
		s.scanned++
		return true
	}
}

// Record returns the record produced by the last successful Scan.
func (s *Scanner) Record() Record { return s.rec }

// Line returns the input line on which the last scanned record started.
func (s *Scanner) Line() int { return s.line }

// Scanned returns how many well-formed records have been yielded.
func (s *Scanner) Scanned() int { return s.scanned }

// RowErrors returns the malformed rows skipped so far in lenient mode,
// each with the true input line of the offending row.
func (s *Scanner) RowErrors() []RowError { return s.rowErrs }

// Err returns the fatal error that stopped the scan, if any. io.EOF is
// not an error.
func (s *Scanner) Err() error { return s.err }
