package failures

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// ctxCSV builds a valid trace CSV with n records, one minute apart.
func ctxCSV(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := NewCSVWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2004, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		rec := Record{
			System:   1,
			Node:     i % 8,
			HW:       "A",
			Workload: WorkloadCompute,
			Cause:    CauseHardware,
			Detail:   "CPU",
			Start:    start.Add(time.Duration(i) * time.Minute),
			End:      start.Add(time.Duration(i)*time.Minute + 30*time.Minute),
		}
		if err := cw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A cancelled context must stop the scan before the next row and surface
// ctx.Err() — not EOF, not a parse error — through Err.
func TestScannerContextCancellation(t *testing.T) {
	data := ctxCSV(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	sc, err := NewScannerContext(ctx, bytes.NewReader(data), ReadCSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const before = 10
	for i := 0; i < before; i++ {
		if !sc.Scan() {
			t.Fatalf("scan %d: stopped early: %v", i, sc.Err())
		}
	}
	cancel()
	if sc.Scan() {
		t.Fatal("Scan succeeded after cancellation")
	}
	if err := sc.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	if sc.Scanned() != before {
		t.Fatalf("Scanned = %d, want %d", sc.Scanned(), before)
	}
	// The scanner stays stopped.
	if sc.Scan() {
		t.Fatal("Scan restarted after a cancellation stop")
	}
}

// An already-done context aborts before the first row, and a scanner
// without a context is unaffected by cancellation machinery.
func TestScannerContextImmediateAndAbsent(t *testing.T) {
	data := ctxCSV(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc, err := NewScannerContext(ctx, bytes.NewReader(data), ReadCSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Scan() {
		t.Fatal("Scan succeeded under a pre-cancelled context")
	}
	if err := sc.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}

	plain, err := NewScannerContext(context.Background(), bytes.NewReader(data), ReadCSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for plain.Scan() {
		n++
	}
	if err := plain.Err(); err != nil || n != 5 {
		t.Fatalf("background-context scan: n=%d err=%v", n, err)
	}
}
