// Package failures defines the failure-record data model of the LANL
// "remedy" database described in Section 2.3 of the paper, together with a
// dataset container supporting the filtering, interarrival extraction and
// downtime accounting that the analyses are built on, and a CSV codec
// matching the released data's spirit.
package failures

import (
	"errors"
	"fmt"
	"time"
)

// RootCause is the high-level root-cause category of a failure record. The
// taxonomy (Section 2.3) was developed jointly by LANL hardware engineers,
// administrators and operations staff.
type RootCause int

// The six high-level root-cause categories.
const (
	CauseUnknown RootCause = iota + 1
	CauseHuman
	CauseEnvironment
	CauseNetwork
	CauseSoftware
	CauseHardware
)

// Causes lists all root-cause categories in the order the paper's figures
// present them (hardware first, unknown last).
func Causes() []RootCause {
	return []RootCause{
		CauseHardware, CauseSoftware, CauseNetwork,
		CauseEnvironment, CauseHuman, CauseUnknown,
	}
}

// String returns the category name.
func (c RootCause) String() string {
	switch c {
	case CauseUnknown:
		return "Unknown"
	case CauseHuman:
		return "Human"
	case CauseEnvironment:
		return "Environment"
	case CauseNetwork:
		return "Network"
	case CauseSoftware:
		return "Software"
	case CauseHardware:
		return "Hardware"
	default:
		return fmt.Sprintf("RootCause(%d)", int(c))
	}
}

// ParseRootCause converts a category name back to a RootCause.
func ParseRootCause(s string) (RootCause, error) {
	for _, c := range Causes() {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("failures: unknown root cause %q", s)
}

// Workload is the type of work a node was running, recorded with each
// failure (Section 2.3).
type Workload int

// The three workload types in the LANL data.
const (
	WorkloadCompute Workload = iota + 1
	WorkloadGraphics
	WorkloadFrontend
)

// Workloads lists all workload types.
func Workloads() []Workload {
	return []Workload{WorkloadCompute, WorkloadGraphics, WorkloadFrontend}
}

// String returns the workload name as used in the released data.
func (w Workload) String() string {
	switch w {
	case WorkloadCompute:
		return "compute"
	case WorkloadGraphics:
		return "graphics"
	case WorkloadFrontend:
		return "fe"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// ParseWorkload converts a workload name back to a Workload.
func ParseWorkload(s string) (Workload, error) {
	for _, w := range Workloads() {
		if w.String() == s {
			return w, nil
		}
	}
	return 0, fmt.Errorf("failures: unknown workload %q", s)
}

// HWType is the anonymized processor/memory chip model label (A–H) used in
// place of vendor information (Table 1).
type HWType string

// Record is one failure: the interval a node was down, where it happened
// and why. It mirrors the fields of a remedy-database entry (Section 2.3).
type Record struct {
	// System is the system ID (1–22 in the LANL data).
	System int
	// Node is the node index within the system.
	Node int
	// HW is the system's hardware type (A–H).
	HW HWType
	// Workload is what the node was running when it failed.
	Workload Workload
	// Cause is the high-level root-cause category.
	Cause RootCause
	// Detail is the finer-grained root cause (e.g. "memory" under
	// Hardware); empty when unrecorded.
	Detail string
	// Start is when the failure was detected (node taken out of the mix).
	Start time.Time
	// End is when repair completed and the node rejoined the job mix.
	End time.Time
}

// Downtime is the repair duration of the record.
func (r Record) Downtime() time.Duration {
	return r.End.Sub(r.Start)
}

// Validate checks internal consistency of a record.
func (r Record) Validate() error {
	if r.System <= 0 {
		return fmt.Errorf("record: non-positive system ID %d", r.System)
	}
	if r.Node < 0 {
		return fmt.Errorf("record: negative node ID %d", r.Node)
	}
	if r.Start.IsZero() || r.End.IsZero() {
		return errors.New("record: zero start or end time")
	}
	if r.End.Before(r.Start) {
		return fmt.Errorf("record: end %v before start %v", r.End, r.Start)
	}
	if r.Cause < CauseUnknown || r.Cause > CauseHardware {
		return fmt.Errorf("record: invalid root cause %d", int(r.Cause))
	}
	if r.Workload < WorkloadCompute || r.Workload > WorkloadFrontend {
		return fmt.Errorf("record: invalid workload %d", int(r.Workload))
	}
	return nil
}
