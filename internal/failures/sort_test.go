package failures

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// randomRecords builds n valid records with start times drawn from a
// small window so duplicates are common — the case where stability
// matters. Node carries the original position so stability is checkable
// after sorting.
func randomRecords(rng *rand.Rand, n, window int) []Record {
	rs := make([]Record, n)
	for i := range rs {
		rs[i] = rec(1+rng.Intn(3), i, rng.Intn(window), 1+rng.Intn(60), CauseHardware)
	}
	return rs
}

func assertStableSorted(t *testing.T, label string, got, original []Record) {
	t.Helper()
	want := make([]Record, len(original))
	copy(want, original)
	sort.SliceStable(want, func(i, j int) bool { return want[i].Start.Before(want[j].Start) })
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: index %d: got node %d @ %v, want node %d @ %v",
				label, i, got[i].Node, got[i].Start, want[i].Node, want[i].Start)
		}
	}
}

func TestSortByStartMatchesSliceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		original := randomRecords(rng, n, 1+rng.Intn(10))
		got := make([]Record, n)
		copy(got, original)
		SortByStart(got)
		assertStableSorted(t, "random", got, original)
	}
}

func TestSortByStartEdgeCases(t *testing.T) {
	SortByStart(nil)
	one := []Record{rec(1, 0, 5, 1, CauseHardware)}
	SortByStart(one)

	// Already sorted: the run detector must exit without touching it.
	sorted := []Record{rec(1, 0, 1, 1, CauseHardware), rec(1, 1, 2, 1, CauseHardware), rec(1, 2, 2, 1, CauseHardware)}
	orig := make([]Record, len(sorted))
	copy(orig, sorted)
	SortByStart(sorted)
	for i := range orig {
		if sorted[i] != orig[i] {
			t.Fatalf("sorted input disturbed at %d", i)
		}
	}

	// Reverse order: worst case for the run structure.
	n := 100
	rev := make([]Record, n)
	for i := range rev {
		rev[i] = rec(1, i, n-i, 1, CauseSoftware)
	}
	cp := make([]Record, n)
	copy(cp, rev)
	SortByStart(rev)
	assertStableSorted(t, "reverse", rev, cp)

	// All-equal start times: output must preserve input order exactly.
	eq := make([]Record, 50)
	for i := range eq {
		eq[i] = rec(2, i, 7, 1, CauseUnknown)
	}
	cp = make([]Record, len(eq))
	copy(cp, eq)
	SortByStart(eq)
	for i := range eq {
		if eq[i].Node != cp[i].Node {
			t.Fatalf("equal-key order broken at %d: node %d", i, eq[i].Node)
		}
	}
}

func TestMergeSortedBlocksMatchesStableSortOfConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		blocks := make([][]Record, rng.Intn(6))
		var concat []Record
		pos := 0
		for bi := range blocks {
			b := randomRecords(rng, rng.Intn(20), 1+rng.Intn(5))
			for i := range b {
				b[i].Node = pos // stability witness across blocks
				pos++
			}
			SortByStart(b)
			blocks[bi] = b
			concat = append(concat, b...)
		}
		got := MergeSortedBlocks(blocks)
		assertStableSorted(t, "merge", got, concat)
	}
}

func TestMergeSortedBlocksEdgeCases(t *testing.T) {
	// No blocks and all-empty blocks: an empty, non-nil-safe result.
	if got := MergeSortedBlocks(nil); len(got) != 0 {
		t.Fatalf("merge of no blocks produced %d records", len(got))
	}
	if got := MergeSortedBlocks([][]Record{nil, {}, nil}); len(got) != 0 {
		t.Fatalf("merge of empty blocks produced %d records", len(got))
	}

	// Single-record blocks interleaved with empties: the heap degenerates
	// to selection over one head per block.
	singles := [][]Record{
		{rec(1, 0, 30, 1, CauseHardware)},
		{},
		{rec(1, 1, 10, 1, CauseSoftware)},
		{rec(1, 2, 20, 1, CauseUnknown)},
		nil,
	}
	got := MergeSortedBlocks(singles)
	if len(got) != 3 || got[0].Node != 1 || got[1].Node != 2 || got[2].Node != 0 {
		t.Fatalf("single-record merge order: %v", got)
	}

	// All-equal keys across blocks: ties must resolve by block order, then
	// by position within the block — the same stability contract as
	// SortByStart on the concatenation.
	eq := make([][]Record, 4)
	pos := 0
	var concat []Record
	for bi := range eq {
		b := make([]Record, 5)
		for i := range b {
			b[i] = rec(2, pos, 42, 1, CauseNetwork) // identical start everywhere
			pos++
		}
		eq[bi] = b
		concat = append(concat, b...)
	}
	assertStableSorted(t, "all-equal", MergeSortedBlocks(eq), concat)
}

func TestCSVWriterEdgeCases(t *testing.T) {
	// Zero records: the streamed file is exactly the header line.
	var empty bytes.Buffer
	cw, err := NewCSVWriter(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.Count() != 0 {
		t.Fatalf("Count = %d, want 0", cw.Count())
	}
	if lines := bytes.Count(empty.Bytes(), []byte("\n")); lines != 1 {
		t.Fatalf("empty stream wrote %d lines, want header only:\n%q", lines, empty.String())
	}

	// A single record, flushed twice: Flush is idempotent and the row is
	// not duplicated.
	var one bytes.Buffer
	cw, err = NewCSVWriter(&one)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(rec(1, 7, 5, 3, CauseHardware)); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(one.Bytes(), []byte("\n")); lines != 2 {
		t.Fatalf("single-record stream wrote %d lines, want header + 1 row:\n%q", lines, one.String())
	}
	// The written row must read back as the same record.
	d, err := ReadCSV(bytes.NewReader(one.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.At(0).Node != 7 || d.At(0).Cause != CauseHardware {
		t.Fatalf("read-back of single streamed row: %v", d.Records())
	}
}

func TestNewDatasetSorted(t *testing.T) {
	sorted := []Record{rec(1, 0, 1, 1, CauseHardware), rec(1, 1, 5, 1, CauseSoftware)}
	d, err := NewDatasetSorted(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.At(0).Node != 0 {
		t.Fatalf("unexpected dataset %v", d.Records())
	}

	// Out-of-order input must still come back sorted (fallback path).
	unsorted := []Record{rec(1, 0, 9, 1, CauseHardware), rec(1, 1, 2, 1, CauseSoftware)}
	d, err = NewDatasetSorted(unsorted)
	if err != nil {
		t.Fatal(err)
	}
	if first, _, _ := d.TimeSpan(); !first.Equal(t0.Add(2 * time.Minute)) {
		t.Fatalf("fallback sort missing: first start %v", first)
	}

	// Validation failures surface exactly as NewDataset's do.
	bad := []Record{{System: -1}}
	if _, err := NewDatasetSorted(bad); err == nil {
		t.Fatal("invalid record accepted")
	}
}

func TestCSVWriterMatchesWriteCSV(t *testing.T) {
	records := []Record{
		rec(1, 0, 1, 30, CauseHardware),
		rec(2, 3, 5, 90, CauseEnvironment),
		rec(1, 1, 9, 15, CauseUnknown),
	}
	d, err := NewDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	var whole bytes.Buffer
	if err := WriteCSV(&whole, d); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	cw, err := NewCSVWriter(&streamed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		if err := cw.Write(d.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.Count() != d.Len() {
		t.Fatalf("Count = %d, want %d", cw.Count(), d.Len())
	}
	if !bytes.Equal(whole.Bytes(), streamed.Bytes()) {
		t.Fatalf("streamed CSV differs from WriteCSV:\n%q\nvs\n%q", streamed.String(), whole.String())
	}
}
