package failures

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// rec builds a valid record offset from t0 by startMin with the given
// repair duration in minutes.
func rec(system, node int, startMin, repairMin int, cause RootCause) Record {
	return Record{
		System:   system,
		Node:     node,
		HW:       "E",
		Workload: WorkloadCompute,
		Cause:    cause,
		Start:    t0.Add(time.Duration(startMin) * time.Minute),
		End:      t0.Add(time.Duration(startMin+repairMin) * time.Minute),
	}
}

func TestRecordValidate(t *testing.T) {
	good := rec(1, 0, 0, 60, CauseHardware)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Record)
	}{
		{"system zero", func(r *Record) { r.System = 0 }},
		{"node negative", func(r *Record) { r.Node = -1 }},
		{"zero start", func(r *Record) { r.Start = time.Time{} }},
		{"zero end", func(r *Record) { r.End = time.Time{} }},
		{"end before start", func(r *Record) { r.End = r.Start.Add(-time.Hour) }},
		{"bad cause", func(r *Record) { r.Cause = 0 }},
		{"bad workload", func(r *Record) { r.Workload = 99 }},
	}
	for _, tc := range cases {
		r := good
		tc.mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestCauseAndWorkloadRoundTrip(t *testing.T) {
	for _, c := range Causes() {
		back, err := ParseRootCause(c.String())
		if err != nil || back != c {
			t.Errorf("cause %v: round trip gave %v, %v", c, back, err)
		}
	}
	if _, err := ParseRootCause("bogus"); err == nil {
		t.Error("bogus cause should fail")
	}
	for _, w := range Workloads() {
		back, err := ParseWorkload(w.String())
		if err != nil || back != w {
			t.Errorf("workload %v: round trip gave %v, %v", w, back, err)
		}
	}
	if _, err := ParseWorkload("bogus"); err == nil {
		t.Error("bogus workload should fail")
	}
	if RootCause(77).String() != "RootCause(77)" {
		t.Error("unknown cause String")
	}
	if Workload(77).String() != "Workload(77)" {
		t.Error("unknown workload String")
	}
}

func TestNewDatasetSortsAndValidates(t *testing.T) {
	records := []Record{
		rec(1, 0, 100, 10, CauseHardware),
		rec(1, 1, 50, 10, CauseSoftware),
		rec(2, 0, 75, 10, CauseNetwork),
	}
	d, err := NewDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
	if !d.At(0).Start.Before(d.At(1).Start) || !d.At(1).Start.Before(d.At(2).Start) {
		t.Fatal("records not sorted by start time")
	}
	// Invalid record rejected with index context.
	bad := append(records, Record{})
	if _, err := NewDataset(bad); err == nil || !strings.Contains(err.Error(), "record 3") {
		t.Fatalf("invalid record: %v", err)
	}
	// Input slice not aliased.
	records[0].System = 99
	if d.At(0).System == 99 || d.At(1).System == 99 || d.At(2).System == 99 {
		t.Fatal("dataset aliases caller slice")
	}
}

func TestFilters(t *testing.T) {
	records := []Record{
		rec(1, 0, 0, 10, CauseHardware),
		rec(1, 1, 10, 10, CauseSoftware),
		rec(2, 0, 20, 10, CauseHardware),
	}
	records[2].HW = "G"
	records[1].Workload = WorkloadGraphics
	d, err := NewDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.BySystem(1).Len(); got != 2 {
		t.Errorf("BySystem(1) = %d", got)
	}
	if got := d.ByNode(1, 1).Len(); got != 1 {
		t.Errorf("ByNode(1,1) = %d", got)
	}
	if got := d.ByHW("G").Len(); got != 1 {
		t.Errorf("ByHW(G) = %d", got)
	}
	if got := d.ByCause(CauseHardware).Len(); got != 2 {
		t.Errorf("ByCause(HW) = %d", got)
	}
	if got := d.ByWorkload(WorkloadGraphics).Len(); got != 1 {
		t.Errorf("ByWorkload(graphics) = %d", got)
	}
	if got := d.Between(t0.Add(5*time.Minute), t0.Add(15*time.Minute)).Len(); got != 1 {
		t.Errorf("Between = %d", got)
	}
	if got := d.Systems(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Systems = %v", got)
	}
	if got := d.Nodes(); len(got) != 2 {
		t.Errorf("Nodes = %v", got)
	}
	if got := d.HWTypes(); len(got) != 2 || got[0] != "E" || got[1] != "G" {
		t.Errorf("HWTypes = %v", got)
	}
}

func TestInterarrivals(t *testing.T) {
	records := []Record{
		rec(1, 0, 0, 5, CauseHardware),
		rec(1, 0, 10, 5, CauseHardware),
		rec(1, 0, 10, 5, CauseSoftware), // simultaneous
		rec(1, 0, 40, 5, CauseHardware),
	}
	d, err := NewDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	ia := d.Interarrivals()
	want := []float64{600, 0, 1800}
	if len(ia) != len(want) {
		t.Fatalf("interarrivals = %v", ia)
	}
	for i := range want {
		if ia[i] != want[i] {
			t.Fatalf("interarrivals = %v, want %v", ia, want)
		}
	}
	pos := d.PositiveInterarrivals()
	if len(pos) != 2 {
		t.Fatalf("positive interarrivals = %v", pos)
	}
	if got := d.ZeroInterarrivalFraction(); got != 1.0/3 {
		t.Fatalf("zero fraction = %g", got)
	}
	// Degenerate sizes.
	empty, err := NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Interarrivals() != nil {
		t.Fatal("empty dataset interarrivals should be nil")
	}
	if empty.ZeroInterarrivalFraction() != 0 {
		t.Fatal("empty dataset zero fraction should be 0")
	}
	single, err := NewDataset(records[:1])
	if err != nil {
		t.Fatal(err)
	}
	if single.Interarrivals() != nil {
		t.Fatal("single record interarrivals should be nil")
	}
}

func TestRepairAndDowntime(t *testing.T) {
	records := []Record{
		rec(1, 0, 0, 30, CauseHardware),
		rec(1, 1, 10, 90, CauseSoftware),
		rec(1, 2, 20, 0, CauseHuman), // zero-duration repair is dropped
	}
	d, err := NewDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	rt := d.RepairTimes()
	if len(rt) != 2 || rt[0] != 30 || rt[1] != 90 {
		t.Fatalf("repair times = %v", rt)
	}
	if d.TotalDowntime() != 120*time.Minute {
		t.Fatalf("total downtime = %v", d.TotalDowntime())
	}
	byCause := d.DowntimeByCause()
	if byCause[CauseHardware] != 30*time.Minute || byCause[CauseSoftware] != 90*time.Minute {
		t.Fatalf("downtime by cause = %v", byCause)
	}
	counts := d.CountByCause()
	if counts[CauseHardware] != 1 || counts[CauseHuman] != 1 {
		t.Fatalf("count by cause = %v", counts)
	}
	nodeCounts := d.CountByNode()
	if nodeCounts[0] != 1 || nodeCounts[1] != 1 || nodeCounts[2] != 1 {
		t.Fatalf("count by node = %v", nodeCounts)
	}
}

func TestCountByDetail(t *testing.T) {
	records := []Record{
		rec(1, 0, 0, 5, CauseHardware),
		rec(1, 0, 10, 5, CauseHardware),
		rec(1, 0, 20, 5, CauseSoftware),
	}
	records[0].Detail = "memory"
	records[1].Detail = "memory"
	d, err := NewDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	got := d.CountByDetail()
	if got["memory"] != 2 || got[""] != 1 {
		t.Fatalf("details = %v", got)
	}
}

func TestTimeSpanAndMerge(t *testing.T) {
	d1, err := NewDataset([]Record{rec(1, 0, 100, 5, CauseHardware)})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDataset([]Record{rec(2, 0, 0, 5, CauseSoftware)})
	if err != nil {
		t.Fatal(err)
	}
	m := Merge(d1, d2)
	if m.Len() != 2 || m.At(0).System != 2 {
		t.Fatal("merge should re-sort by start time")
	}
	first, last, err := m.TimeSpan()
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(t0) || !last.Equal(t0.Add(100*time.Minute)) {
		t.Fatalf("span = %v..%v", first, last)
	}
	empty, err := NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := empty.TimeSpan(); err == nil {
		t.Fatal("empty TimeSpan: want error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	records := []Record{
		rec(1, 0, 0, 30, CauseHardware),
		rec(20, 22, 90, 125, CauseSoftware),
	}
	records[0].Detail = "memory"
	records[1].Workload = WorkloadGraphics
	records[1].HW = "G"
	d, err := NewDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip len = %d", back.Len())
	}
	for i := 0; i < d.Len(); i++ {
		a, b := d.At(i), back.At(i)
		if a.System != b.System || a.Node != b.Node || a.HW != b.HW ||
			a.Workload != b.Workload || a.Cause != b.Cause || a.Detail != b.Detail ||
			!a.Start.Equal(b.Start) || !a.End.Equal(b.End) {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"bad header", "a,b,c,d,e,f,g,h\n"},
		{"bad system", "system,node,hw,workload,cause,detail,start,end\nX,0,E,compute,Hardware,,2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n"},
		{"bad node", "system,node,hw,workload,cause,detail,start,end\n1,X,E,compute,Hardware,,2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n"},
		{"bad workload", "system,node,hw,workload,cause,detail,start,end\n1,0,E,xyz,Hardware,,2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n"},
		{"bad cause", "system,node,hw,workload,cause,detail,start,end\n1,0,E,compute,Bogus,,2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n"},
		{"bad start", "system,node,hw,workload,cause,detail,start,end\n1,0,E,compute,Hardware,,not-a-time,2000-01-01T01:00:00Z\n"},
		{"bad end", "system,node,hw,workload,cause,detail,start,end\n1,0,E,compute,Hardware,,2000-01-01T00:00:00Z,nope\n"},
		{"wrong field count", "system,node,hw,workload,cause,detail,start,end\n1,0,E\n"},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestFilterPreservesOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		records := make([]Record, 0, len(offsets))
		for i, off := range offsets {
			records = append(records, rec(1+i%3, i%5, int(off), 10, CauseHardware))
		}
		d, err := NewDataset(records)
		if err != nil {
			return false
		}
		filtered := d.BySystem(1)
		for i := 1; i < filtered.Len(); i++ {
			if filtered.At(i).Start.Before(filtered.At(i - 1).Start) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetHours(t *testing.T) {
	d, err := NewDataset([]Record{
		rec(1, 0, -60, 5, CauseHardware), // before origin: dropped
		rec(1, 0, 0, 5, CauseHardware),   // exactly at origin: kept as offset 0
		rec(1, 0, 120, 5, CauseHardware),
		rec(1, 0, 600, 5, CauseHardware),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := d.OffsetHours(t0)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 10 {
		t.Fatalf("offsets = %v, want [0 2 10]", got)
	}
}

// TestOffsetHoursOriginBoundary pins the boundary fix in isolation: a
// record starting exactly at origin is an observed failure at offset
// zero, not a record to silently drop — dropping it biased every trend
// test and event count fed from OffsetHours.
func TestOffsetHoursOriginBoundary(t *testing.T) {
	d, err := NewDataset([]Record{rec(3, 1, 0, 5, CauseSoftware)})
	if err != nil {
		t.Fatal(err)
	}
	got := d.OffsetHours(t0)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("offsets of a record starting at origin = %v, want [0]", got)
	}
	// One nanosecond earlier is before the observation window: dropped.
	if got := d.OffsetHours(t0.Add(time.Nanosecond)); len(got) != 0 {
		t.Fatalf("offsets with origin after the record = %v, want none", got)
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	// Randomized round trip: any valid dataset survives encode/decode.
	f := func(raw []uint16) bool {
		records := make([]Record, 0, len(raw))
		causes := Causes()
		workloads := Workloads()
		for i, v := range raw {
			records = append(records, Record{
				System:   1 + int(v%22),
				Node:     int(v % 128),
				HW:       HWType(string(rune('A' + v%8))),
				Workload: workloads[int(v)%len(workloads)],
				Cause:    causes[int(v)%len(causes)],
				Detail:   []string{"", "memory", "cpu"}[int(v)%3],
				Start:    t0.Add(time.Duration(v) * time.Minute),
				End:      t0.Add(time.Duration(int(v)+1+i%500) * time.Minute),
			})
		}
		d, err := NewDataset(records)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if back.Len() != d.Len() {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			a, b := d.At(i), back.At(i)
			if a.System != b.System || a.Node != b.Node || a.HW != b.HW ||
				a.Workload != b.Workload || a.Cause != b.Cause ||
				a.Detail != b.Detail || !a.Start.Equal(b.Start) || !a.End.Equal(b.End) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
