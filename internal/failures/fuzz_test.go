package failures

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary input through both the strict and lenient
// CSV readers. Neither may panic, and whenever the strict reader accepts
// an input the lenient reader must accept the same rows with no row
// errors.
func FuzzReadCSV(f *testing.F) {
	// Round-trip output of a small valid dataset as the happy-path seed.
	d, err := NewDataset([]Record{
		rec(1, 0, 0, 30, CauseHardware),
		rec(20, 22, 90, 125, CauseSoftware),
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())

	// Malformed seeds mirroring TestCSVErrors plus framing pathologies.
	header := "system,node,hw,workload,cause,detail,start,end\n"
	for _, s := range []string{
		"",
		"a,b,c,d,e,f,g,h\n",
		header,
		header + "X,0,E,compute,Hardware,,2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n",
		header + "1,X,E,compute,Hardware,,2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n",
		header + "1,0,E,xyz,Hardware,,2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n",
		header + "1,0,E,compute,Bogus,,2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n",
		header + "1,0,E,compute,Hardware,,not-a-time,2000-01-01T01:00:00Z\n",
		header + "1,0,E,compute,Hardware,,2000-01-01T00:00:00Z,nope\n",
		header + "1,0,E\n",
		header + "1,0,E,compute,Hardware,\"unterminated,2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n",
		header + "1,0,E,compute,Hardware,,2000-01-01T01:00:00Z,2000-01-01T00:00:00Z\n", // end before start
		// A quoted field spanning input lines followed by a bad row: line
		// numbers must track true input lines, not record counts.
		header + "1,0,E,compute,Hardware,\"a\nb\",2000-01-01T00:00:00Z,2000-01-01T01:00:00Z\n" +
			"1,1,E,compute,Bogus,,2000-01-01T02:00:00Z,2000-01-01T03:00:00Z\n",
		header + "1,0,E,compute,Hardware,,2000-01-01T00:00:00.25Z,2000-01-01T01:00:00.5Z\n", // sub-second
		lenientInput,
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, input string) {
		strictD, strictErr := ReadCSV(strings.NewReader(input))
		lenientD, rowErrs, lenientErr := ReadCSVWith(strings.NewReader(input), ReadCSVOptions{SkipMalformed: true})

		// The streaming scanner must agree with the lenient reader on
		// accepted rows, and its reported lines — for records and row
		// errors alike — must be strictly increasing true input lines.
		if sc, err := NewScanner(strings.NewReader(input), ReadCSVOptions{SkipMalformed: true}); err == nil {
			if lenientErr != nil {
				t.Fatalf("scanner constructed but lenient reader failed header: %v", lenientErr)
			}
			prevLine := 1 // the header
			n := 0
			for sc.Scan() {
				if sc.Line() <= prevLine {
					t.Fatalf("record line %d not after previous line %d", sc.Line(), prevLine)
				}
				prevLine = sc.Line()
				n++
			}
			if sc.Err() != nil {
				t.Fatalf("lenient scanner hit fatal error: %v", sc.Err())
			}
			if n != lenientD.Len() {
				t.Fatalf("scanner yielded %d rows, lenient reader kept %d", n, lenientD.Len())
			}
			if len(sc.RowErrors()) != len(rowErrs) {
				t.Fatalf("scanner row errors %v, reader %v", sc.RowErrors(), rowErrs)
			}
			for _, re := range sc.RowErrors() {
				if re.Line < 2 {
					t.Fatalf("row error on line %d, before any data row: %v", re.Line, re)
				}
			}
		} else if lenientErr == nil {
			t.Fatalf("lenient reader accepted header the scanner rejected: %v", err)
		}

		if strictErr != nil {
			return
		}
		// Strict acceptance implies lenient acceptance of the same rows.
		if lenientErr != nil {
			t.Fatalf("strict ok but lenient failed: %v", lenientErr)
		}
		if len(rowErrs) != 0 {
			t.Fatalf("strict ok but lenient reported row errors: %v", rowErrs)
		}
		if lenientD.Len() != strictD.Len() {
			t.Fatalf("strict kept %d rows, lenient %d", strictD.Len(), lenientD.Len())
		}
		// Accepted input must survive a write/read round trip.
		var out bytes.Buffer
		if err := WriteCSV(&out, strictD); err != nil {
			t.Fatalf("re-encode accepted dataset: %v", err)
		}
		back, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("re-read accepted dataset: %v", err)
		}
		if back.Len() != strictD.Len() {
			t.Fatalf("round trip kept %d of %d rows", back.Len(), strictD.Len())
		}
	})
}
