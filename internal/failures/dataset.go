package failures

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// ErrNoRecords is returned by operations that need a non-empty dataset.
var ErrNoRecords = errors.New("failures: no records")

// Dataset is an immutable, time-ordered collection of failure records.
type Dataset struct {
	records []Record
}

// NewDataset validates, copies and time-orders the given records.
func NewDataset(records []Record) (*Dataset, error) {
	for i, r := range records {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("dataset record %d: %w", i, err)
		}
	}
	rs := make([]Record, len(records))
	copy(rs, records)
	SortByStart(rs)
	return &Dataset{records: rs}, nil
}

// NewDatasetSorted is NewDataset for records already in non-decreasing
// start-time order: it validates and takes ownership of the slice, paying
// neither the copy nor the sort. Order is verified in the same validation
// pass; out-of-order input falls back to the stable sort, so the result
// is a valid Dataset either way. The caller must not use the slice after
// handing it over.
func NewDatasetSorted(records []Record) (*Dataset, error) {
	sorted := true
	for i, r := range records {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("dataset record %d: %w", i, err)
		}
		if i > 0 && r.Start.Before(records[i-1].Start) {
			sorted = false
		}
	}
	if !sorted {
		SortByStart(records)
	}
	return &Dataset{records: records}, nil
}

// startKey is the compact sort key SortByStart merges instead of whole
// Records: the start instant as wall-clock seconds and nanoseconds plus
// the original position. The position makes every comparison strict, so
// a plain merge is automatically stable, and a 16-byte pointer-free key
// moves through the merge passes for the price of two machine words
// instead of a full Record with its write barriers.
type startKey struct {
	sec  int64
	nsec int32
	idx  int32
}

func (a startKey) less(b startKey) bool {
	if a.sec != b.sec {
		return a.sec < b.sec
	}
	if a.nsec != b.nsec {
		return a.nsec < b.nsec
	}
	return a.idx < b.idx
}

// SortByStart stably sorts records by start time (the wall-clock
// instant; monotonic clock readings are ignored) in place. It is the
// sorting kernel behind NewDataset: a bottom-up natural merge over the
// slice's pre-existing non-decreasing runs — O(n) on sorted input and
// cheap on the run-structured slices the trace generator emits — run on
// compact index keys, with the records themselves moved exactly once by
// a final permutation pass. A stable order is unique, so the result is
// element-for-element the order sort.SliceStable would produce.
func SortByStart(rs []Record) {
	n := len(rs)
	if n < 2 {
		return
	}
	// Boundaries of the maximal non-decreasing runs, terminated by n.
	bounds := make([]int, 1, 64)
	for i := 1; i < n; i++ {
		if rs[i].Start.Before(rs[i-1].Start) {
			bounds = append(bounds, i)
		}
	}
	if len(bounds) == 1 {
		return
	}
	bounds = append(bounds, n)
	keys := make([]startKey, n)
	for i := range rs {
		t := rs[i].Start
		keys[i] = startKey{sec: t.Unix(), nsec: int32(t.Nanosecond()), idx: int32(i)}
	}
	buf := make([]startKey, n)
	src, dst := keys, buf
	for len(bounds) > 2 {
		next := make([]int, 0, len(bounds)/2+2)
		var k int
		for k = 0; k+2 < len(bounds); k += 2 {
			lo, mid, hi := bounds[k], bounds[k+1], bounds[k+2]
			mergeKeys(dst[lo:hi], src[lo:mid], src[mid:hi])
			next = append(next, lo)
		}
		if k+1 < len(bounds) {
			// Odd run count: the last run passes through unmerged.
			copy(dst[bounds[k]:n], src[bounds[k]:n])
			next = append(next, bounds[k])
		}
		next = append(next, n)
		bounds = next
		src, dst = dst, src
	}
	out := make([]Record, n)
	for k, key := range src {
		out[k] = rs[key.idx]
	}
	copy(rs, out)
}

// mergeKeys merges two sorted key runs; keys are strictly ordered (the
// index breaks ties), so stability falls out of the comparison.
func mergeKeys(out, a, b []startKey) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j].less(a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}

// MergeSortedBlocks merges blocks that are each already sorted by start
// time into one sorted slice, moving every record exactly once. The
// merge is stable across blocks — on equal start times the record from
// the earlier block comes first — so merging per-source sorted blocks in
// source order reproduces exactly the stable sort of their raw
// concatenation. Head keys are cached as integers, so the k-way scan
// compares machine words rather than time.Times.
func MergeSortedBlocks(blocks [][]Record) []Record {
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	out := make([]Record, 0, total)
	type head struct {
		sec  int64
		nsec int32
		bi   int32
	}
	heads := make([]head, 0, len(blocks))
	next := make([]int, len(blocks))
	for bi, b := range blocks {
		if len(b) > 0 {
			t := b[0].Start
			heads = append(heads, head{sec: t.Unix(), nsec: int32(t.Nanosecond()), bi: int32(bi)})
		}
	}
	for len(heads) > 0 {
		best := 0
		for i := 1; i < len(heads); i++ {
			h, b := heads[i], heads[best]
			if h.sec < b.sec ||
				(h.sec == b.sec && (h.nsec < b.nsec || (h.nsec == b.nsec && h.bi < b.bi))) {
				best = i
			}
		}
		bi := heads[best].bi
		block := blocks[bi]
		out = append(out, block[next[bi]])
		next[bi]++
		if next[bi] < len(block) {
			t := block[next[bi]].Start
			heads[best] = head{sec: t.Unix(), nsec: int32(t.Nanosecond()), bi: bi}
		} else {
			heads[best] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
	}
	return out
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.records) }

// Records returns a copy of the records in start-time order.
func (d *Dataset) Records() []Record {
	out := make([]Record, len(d.records))
	copy(out, d.records)
	return out
}

// At returns the i-th record in start-time order.
func (d *Dataset) At(i int) Record { return d.records[i] }

// Filter returns a new Dataset of the records satisfying keep. Order is
// preserved, so the result needs no re-sort.
func (d *Dataset) Filter(keep func(Record) bool) *Dataset {
	var out []Record
	for _, r := range d.records {
		if keep(r) {
			out = append(out, r)
		}
	}
	return &Dataset{records: out}
}

// BySystem returns the records of one system.
func (d *Dataset) BySystem(system int) *Dataset {
	return d.Filter(func(r Record) bool { return r.System == system })
}

// ByNode returns the records of one node of one system.
func (d *Dataset) ByNode(system, node int) *Dataset {
	return d.Filter(func(r Record) bool { return r.System == system && r.Node == node })
}

// ByHW returns the records of all systems with the given hardware type.
func (d *Dataset) ByHW(hw HWType) *Dataset {
	return d.Filter(func(r Record) bool { return r.HW == hw })
}

// ByCause returns the records with the given root cause.
func (d *Dataset) ByCause(c RootCause) *Dataset {
	return d.Filter(func(r Record) bool { return r.Cause == c })
}

// ByWorkload returns the records whose node ran the given workload.
func (d *Dataset) ByWorkload(w Workload) *Dataset {
	return d.Filter(func(r Record) bool { return r.Workload == w })
}

// Between returns records whose start time falls in [from, to).
func (d *Dataset) Between(from, to time.Time) *Dataset {
	return d.Filter(func(r Record) bool {
		return !r.Start.Before(from) && r.Start.Before(to)
	})
}

// Systems returns the sorted distinct system IDs present.
func (d *Dataset) Systems() []int {
	seen := make(map[int]bool)
	for _, r := range d.records {
		seen[r.System] = true
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Nodes returns the sorted distinct node IDs present (for one system's
// dataset; on mixed datasets it unions node IDs across systems).
func (d *Dataset) Nodes() []int {
	seen := make(map[int]bool)
	for _, r := range d.records {
		seen[r.Node] = true
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// HWTypes returns the sorted distinct hardware types present.
func (d *Dataset) HWTypes() []HWType {
	seen := make(map[HWType]bool)
	for _, r := range d.records {
		seen[r.HW] = true
	}
	out := make([]HWType, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TimeSpan returns the earliest start and latest start in the dataset.
func (d *Dataset) TimeSpan() (first, last time.Time, err error) {
	if len(d.records) == 0 {
		return time.Time{}, time.Time{}, ErrNoRecords
	}
	return d.records[0].Start, d.records[len(d.records)-1].Start, nil
}

// Interarrivals returns the time between consecutive failure start times in
// seconds, the quantity Figure 6 fits distributions to. For a per-node view
// filter with ByNode first; for the system-wide view use BySystem. Zero
// interarrivals (simultaneous failures) are retained: their frequency is
// itself a finding of the paper (Section 5.3).
func (d *Dataset) Interarrivals() []float64 {
	if len(d.records) < 2 {
		return nil
	}
	out := make([]float64, 0, len(d.records)-1)
	for i := 1; i < len(d.records); i++ {
		out = append(out, d.records[i].Start.Sub(d.records[i-1].Start).Seconds())
	}
	return out
}

// PositiveInterarrivals returns interarrival times with zeros removed, the
// form required for fitting positive-support distributions.
func (d *Dataset) PositiveInterarrivals() []float64 {
	all := d.Interarrivals()
	out := make([]float64, 0, len(all))
	for _, x := range all {
		if x > 0 {
			out = append(out, x)
		}
	}
	return out
}

// ZeroInterarrivalFraction returns the fraction of interarrival times that
// are exactly zero — the simultaneous-failure indicator of Section 5.3.
func (d *Dataset) ZeroInterarrivalFraction() float64 {
	all := d.Interarrivals()
	if len(all) == 0 {
		return 0
	}
	zeros := 0
	for _, x := range all {
		if x == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(all))
}

// RepairTimes returns every record's downtime in minutes, the unit of
// Table 2 and Figure 7. Non-positive repair times are dropped (a handful of
// same-minute repairs cannot be fitted by positive-support distributions).
func (d *Dataset) RepairTimes() []float64 {
	out := make([]float64, 0, len(d.records))
	for _, r := range d.records {
		m := r.Downtime().Minutes()
		if m > 0 {
			out = append(out, m)
		}
	}
	return out
}

// TotalDowntime sums the downtime over all records.
func (d *Dataset) TotalDowntime() time.Duration {
	var total time.Duration
	for _, r := range d.records {
		total += r.Downtime()
	}
	return total
}

// CountByCause returns the number of records per root-cause category.
func (d *Dataset) CountByCause() map[RootCause]int {
	out := make(map[RootCause]int)
	for _, r := range d.records {
		out[r.Cause]++
	}
	return out
}

// DowntimeByCause returns the total downtime per root-cause category.
func (d *Dataset) DowntimeByCause() map[RootCause]time.Duration {
	out := make(map[RootCause]time.Duration)
	for _, r := range d.records {
		out[r.Cause] += r.Downtime()
	}
	return out
}

// CountByNode returns, for each node ID present, the number of records.
func (d *Dataset) CountByNode() map[int]int {
	out := make(map[int]int)
	for _, r := range d.records {
		out[r.Node]++
	}
	return out
}

// CountByDetail returns the number of records per low-level root-cause
// detail string (e.g. "memory", "cpu"). Records without detail are grouped
// under the empty string.
func (d *Dataset) CountByDetail() map[string]int {
	out := make(map[string]int)
	for _, r := range d.records {
		out[r.Detail]++
	}
	return out
}

// Merge combines several datasets into one time-ordered dataset.
func Merge(ds ...*Dataset) *Dataset {
	var all []Record
	for _, d := range ds {
		all = append(all, d.records...)
	}
	SortByStart(all)
	return &Dataset{records: all}
}

// OffsetHours returns each record's start time as hours since origin,
// keeping only non-negative offsets — the event-time form consumed by
// trend tests and power-law fits. A record starting exactly at origin is
// an event at time zero, not a record to drop: production windows start
// at UTC midnights, so real traces do land failures on the origin
// itself. Records starting before origin are outside the observation
// window and are excluded.
func (d *Dataset) OffsetHours(origin time.Time) []float64 {
	out := make([]float64, 0, len(d.records))
	for _, r := range d.records {
		if h := r.Start.Sub(origin).Hours(); h >= 0 {
			out = append(out, h)
		}
	}
	return out
}
