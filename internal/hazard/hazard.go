// Package hazard estimates hazard rates from failure interarrival data.
// The paper interprets its Weibull fits through the hazard rate function
// (Section 5.3: "an increasing hazard rate function predicts that if the
// time since a failure is long then the next failure is coming soon; a
// decreasing hazard rate function predicts the reverse"). This package
// makes that interpretation testable without assuming a parametric family:
// a Nelson–Aalen cumulative-hazard estimator, a binned empirical hazard,
// and a nonparametric direction test.
package hazard

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hpcfail/internal/stats"
)

// ErrInsufficientData is returned when an estimator needs more samples.
var ErrInsufficientData = errors.New("hazard: insufficient data")

// CumulativePoint is one step of the Nelson–Aalen cumulative hazard
// estimate H(t).
type CumulativePoint struct {
	// T is the event time (same unit as the input).
	T float64
	// H is the estimated cumulative hazard at T.
	H float64
	// Var is the estimated variance of H at T.
	Var float64
}

// NelsonAalen computes the Nelson–Aalen estimator of the cumulative hazard
// from complete (uncensored) lifetimes: H(t) = Σ_{t_i <= t} d_i / n_i,
// where d_i failures occur at time t_i and n_i units are still at risk.
func NelsonAalen(lifetimes []float64) ([]CumulativePoint, error) {
	if len(lifetimes) == 0 {
		return nil, ErrInsufficientData
	}
	sorted := make([]float64, len(lifetimes))
	copy(sorted, lifetimes)
	sort.Float64s(sorted)
	if sorted[0] <= 0 {
		return nil, fmt.Errorf("hazard: non-positive lifetime %g", sorted[0])
	}
	var out []CumulativePoint
	h, v := 0.0, 0.0
	i := 0
	n := len(sorted)
	for i < n {
		t := sorted[i]
		d := 0
		for i < n && sorted[i] == t {
			d++
			i++
		}
		atRisk := float64(n - (i - d))
		h += float64(d) / atRisk
		v += float64(d) / (atRisk * atRisk)
		out = append(out, CumulativePoint{T: t, H: h, Var: v})
	}
	return out, nil
}

// Estimate is a binned empirical hazard-rate estimate.
type Estimate struct {
	// Edges are the bin boundaries (len = len(Rates)+1).
	Edges []float64
	// Rates[i] is the estimated hazard in [Edges[i], Edges[i+1]):
	// failures in the bin divided by time-at-risk accumulated in the bin.
	Rates []float64
	// Events[i] counts the failures in the bin.
	Events []int
}

// Empirical computes a binned hazard-rate estimate from complete lifetimes
// using equal-probability bins (each bin holds about the same number of
// events, so rate estimates have comparable precision).
func Empirical(lifetimes []float64, bins int) (*Estimate, error) {
	if bins < 2 {
		return nil, fmt.Errorf("hazard: need >= 2 bins, got %d", bins)
	}
	if len(lifetimes) < 2*bins {
		return nil, fmt.Errorf("hazard: %d lifetimes for %d bins: %w",
			len(lifetimes), bins, ErrInsufficientData)
	}
	sorted := make([]float64, len(lifetimes))
	copy(sorted, lifetimes)
	sort.Float64s(sorted)
	if sorted[0] <= 0 {
		return nil, fmt.Errorf("hazard: non-positive lifetime %g", sorted[0])
	}
	// Quantile-based edges: 0, q_{1/bins}, ..., q_{(bins-1)/bins}, max.
	edges := make([]float64, bins+1)
	for i := 1; i < bins; i++ {
		q, err := stats.Quantile(sorted, float64(i)/float64(bins))
		if err != nil {
			return nil, fmt.Errorf("hazard: %w", err)
		}
		edges[i] = q
	}
	edges[bins] = sorted[len(sorted)-1]
	// Guard against duplicate edges from ties.
	for i := 1; i <= bins; i++ {
		if edges[i] <= edges[i-1] {
			edges[i] = math.Nextafter(edges[i-1], math.Inf(1))
		}
	}
	est := &Estimate{
		Edges:  edges,
		Rates:  make([]float64, bins),
		Events: make([]int, bins),
	}
	// Each lifetime contributes exposure to every bin it survives through
	// and one event to the bin it dies in.
	exposure := make([]float64, bins)
	for _, t := range sorted {
		for b := 0; b < bins; b++ {
			lo, hi := est.Edges[b], est.Edges[b+1]
			if t <= lo {
				break
			}
			if t >= hi {
				exposure[b] += hi - lo
				continue
			}
			exposure[b] += t - lo
			est.Events[b]++
			break
		}
		// Deaths beyond the last edge (t == max) land in the final bin.
		if t >= est.Edges[bins] {
			est.Events[bins-1]++
		}
	}
	for b := 0; b < bins; b++ {
		if exposure[b] > 0 {
			est.Rates[b] = float64(est.Events[b]) / exposure[b]
		}
	}
	return est, nil
}

// Direction classifies the trend of a hazard estimate.
type Direction int

// Hazard directions.
const (
	// Decreasing means later bins have lower hazard (the paper's TBF
	// finding: Weibull shape < 1).
	Decreasing Direction = iota + 1
	// Increasing means later bins have higher hazard (wear-out).
	Increasing
	// Flat means no clear monotone trend (memoryless-compatible).
	Flat
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Decreasing:
		return "decreasing"
	case Increasing:
		return "increasing"
	case Flat:
		return "flat"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Trend classifies the direction of a hazard estimate by the weighted
// Kendall-style comparison of bin rates: it counts concordant vs
// discordant bin pairs and requires a 2:1 majority to call a direction.
func (e *Estimate) Trend() Direction {
	up, down := 0, 0
	for i := 0; i < len(e.Rates); i++ {
		for j := i + 1; j < len(e.Rates); j++ {
			switch {
			case e.Rates[j] > e.Rates[i]:
				up++
			case e.Rates[j] < e.Rates[i]:
				down++
			}
		}
	}
	switch {
	case down >= 2*up && down > 0:
		return Decreasing
	case up >= 2*down && up > 0:
		return Increasing
	default:
		return Flat
	}
}

// MeanResidualLife returns the expected remaining lifetime given survival
// to age t, estimated from the sample: E[X - t | X > t]. For a decreasing
// hazard this *grows* with t — the operational meaning of the paper's
// Weibull finding for maintenance planning.
func MeanResidualLife(lifetimes []float64, t float64) (float64, error) {
	if len(lifetimes) == 0 {
		return math.NaN(), ErrInsufficientData
	}
	var sum float64
	n := 0
	for _, x := range lifetimes {
		if x > t {
			sum += x - t
			n++
		}
	}
	if n == 0 {
		return math.NaN(), fmt.Errorf("hazard: no lifetimes beyond %g: %w", t, ErrInsufficientData)
	}
	return sum / float64(n), nil
}
