package hazard

import (
	"errors"
	"math"
	"testing"

	"hpcfail/internal/randx"
)

func TestNelsonAalenSmallExample(t *testing.T) {
	// Hand-computed: lifetimes 1,2,2,4 (n=4).
	// t=1: d=1, at risk 4 -> H=0.25
	// t=2: d=2, at risk 3 -> H=0.25+2/3
	// t=4: d=1, at risk 1 -> H=0.25+2/3+1
	pts, err := NelsonAalen([]float64{2, 1, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	want := []float64{0.25, 0.25 + 2.0/3, 0.25 + 2.0/3 + 1}
	for i, p := range pts {
		if math.Abs(p.H-want[i]) > 1e-12 {
			t.Fatalf("H[%d] = %g, want %g", i, p.H, want[i])
		}
	}
	// Variance increases monotonically.
	if !(pts[0].Var < pts[1].Var && pts[1].Var < pts[2].Var) {
		t.Fatal("variance should accumulate")
	}
}

func TestNelsonAalenErrors(t *testing.T) {
	if _, err := NelsonAalen(nil); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("empty: want ErrInsufficientData")
	}
	if _, err := NelsonAalen([]float64{0, 1}); err == nil {
		t.Fatal("zero lifetime: want error")
	}
}

func TestNelsonAalenMatchesExponential(t *testing.T) {
	// For exponential(rate) data, H(t) ~= rate * t.
	src := randx.NewSource(1)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = src.Exponential(0.1)
	}
	pts, err := NelsonAalen(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Check at the median point.
	mid := pts[len(pts)/2]
	want := 0.1 * mid.T
	if math.Abs(mid.H-want)/want > 0.05 {
		t.Fatalf("H(%g) = %g, want %g", mid.T, mid.H, want)
	}
}

func TestEmpiricalHazardDirections(t *testing.T) {
	src := randx.NewSource(2)
	const n = 30000

	draw := func(gen func() float64) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = gen()
		}
		return xs
	}

	// Weibull shape 0.7: decreasing hazard (the paper's TBF case).
	dec := draw(func() float64 { return src.Weibull(0.7, 100) })
	est, err := Empirical(dec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Trend(); got != Decreasing {
		t.Errorf("weibull(0.7): trend = %v, want decreasing (rates %v)", got, est.Rates)
	}

	// Weibull shape 2: increasing hazard.
	inc := draw(func() float64 { return src.Weibull(2, 100) })
	est, err = Empirical(inc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Trend(); got != Increasing {
		t.Errorf("weibull(2): trend = %v, want increasing (rates %v)", got, est.Rates)
	}

	// Exponential: flat (no 2:1 majority either way).
	flat := draw(func() float64 { return src.Exponential(0.01) })
	est, err = Empirical(flat, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Trend(); got == Increasing {
		// Flat is ideal; a weak decreasing call can happen by chance, but
		// increasing would be wrong for this seed's data.
		t.Errorf("exponential: trend = %v (rates %v)", got, est.Rates)
	}
}

func TestEmpiricalHazardLevels(t *testing.T) {
	// Exponential hazard level should be ~rate in every bin.
	src := randx.NewSource(3)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = src.Exponential(0.05)
	}
	est, err := Empirical(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for b, r := range est.Rates[:4] { // final bin is tail-noisy
		if math.Abs(r-0.05)/0.05 > 0.15 {
			t.Errorf("bin %d hazard = %g, want ~0.05", b, r)
		}
	}
	// All events accounted for.
	total := 0
	for _, e := range est.Events {
		total += e
	}
	if total != len(xs) {
		t.Fatalf("events %d != n %d", total, len(xs))
	}
}

func TestEmpiricalErrors(t *testing.T) {
	if _, err := Empirical([]float64{1, 2, 3}, 1); err == nil {
		t.Fatal("1 bin: want error")
	}
	if _, err := Empirical([]float64{1, 2, 3}, 4); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("too few lifetimes: want ErrInsufficientData")
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i) - 50
	}
	if _, err := Empirical(xs, 4); err == nil {
		t.Fatal("negative lifetimes: want error")
	}
}

func TestEmpiricalWithTies(t *testing.T) {
	// Many identical values force duplicate quantile edges; the estimator
	// must survive.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 5
		if i%10 == 0 {
			xs[i] = float64(i + 1)
		}
	}
	if _, err := Empirical(xs, 4); err != nil {
		t.Fatalf("tied data: %v", err)
	}
}

func TestMeanResidualLife(t *testing.T) {
	src := randx.NewSource(4)
	// Exponential: MRL constant = mean.
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = src.Exponential(0.01)
	}
	m0, err := MeanResidualLife(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	m100, err := MeanResidualLife(xs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m0-100)/100 > 0.05 || math.Abs(m100-100)/100 > 0.08 {
		t.Fatalf("exponential MRL(0)=%g MRL(100)=%g, want ~100", m0, m100)
	}
	// Weibull shape 0.7: MRL grows with age (decreasing hazard).
	wb := make([]float64, 50000)
	for i := range wb {
		wb[i] = src.Weibull(0.7, 100)
	}
	w0, err := MeanResidualLife(wb, 0)
	if err != nil {
		t.Fatal(err)
	}
	w200, err := MeanResidualLife(wb, 200)
	if err != nil {
		t.Fatal(err)
	}
	if w200 <= w0 {
		t.Fatalf("weibull(0.7) MRL should grow: MRL(0)=%g MRL(200)=%g", w0, w200)
	}
	// Errors.
	if _, err := MeanResidualLife(nil, 0); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("empty: want error")
	}
	if _, err := MeanResidualLife([]float64{1, 2}, 10); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("t beyond sample: want error")
	}
}

func TestDirectionString(t *testing.T) {
	if Decreasing.String() != "decreasing" || Increasing.String() != "increasing" ||
		Flat.String() != "flat" {
		t.Fatal("direction names")
	}
	if Direction(9).String() != "Direction(9)" {
		t.Fatal("unknown direction name")
	}
}
