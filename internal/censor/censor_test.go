package censor

import (
	"errors"
	"math"
	"testing"

	"hpcfail/internal/randx"
)

func TestKaplanMeierTextbookExample(t *testing.T) {
	// Classic example: deaths at 1, 3, 5; censored at 2, 4.
	obs := []Observation{
		{Time: 1}, {Time: 2, Censored: true}, {Time: 3},
		{Time: 4, Censored: true}, {Time: 5},
	}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	// t=1: 5 at risk, S = 4/5 = 0.8
	// t=3: 3 at risk, S = 0.8 * 2/3 = 0.5333
	// t=5: 1 at risk, S = 0.5333 * 0 = 0
	want := []struct {
		t, s float64
	}{{1, 0.8}, {3, 0.8 * 2 / 3}, {5, 0}}
	if len(curve) != len(want) {
		t.Fatalf("curve = %+v", curve)
	}
	for i, w := range want {
		if curve[i].T != w.t || math.Abs(curve[i].S-w.s) > 1e-12 {
			t.Fatalf("point %d = %+v, want %+v", i, curve[i], w)
		}
	}
	// S(3) = 0.533 is still above 0.5, so the median is the next event
	// time, t=5, where S drops to 0.
	med, err := MedianSurvival(curve)
	if err != nil {
		t.Fatal(err)
	}
	if med != 5 {
		t.Fatalf("median survival = %g, want 5", med)
	}
}

func TestKaplanMeierNoCensoringMatchesECDF(t *testing.T) {
	obs := []Observation{{Time: 1}, {Time: 2}, {Time: 3}, {Time: 4}}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range curve {
		want := 1 - float64(i+1)/4
		if math.Abs(p.S-want) > 1e-12 {
			t.Fatalf("S(%g) = %g, want %g", p.T, p.S, want)
		}
	}
}

func TestKaplanMeierErrors(t *testing.T) {
	if _, err := KaplanMeier(nil); err == nil {
		t.Fatal("empty: want error")
	}
	if _, err := KaplanMeier([]Observation{{Time: -1}}); err == nil {
		t.Fatal("negative time: want error")
	}
	if _, err := KaplanMeier([]Observation{{Time: 1, Censored: true}}); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("all censored: want ErrInsufficientData")
	}
	if _, err := MedianSurvival([]SurvivalPoint{{T: 1, S: 0.9}}); err == nil {
		t.Fatal("median never reached: want error")
	}
}

func TestFitExponentialCensored(t *testing.T) {
	// Exponential(0.02) data censored at 30: the naive mean would be
	// biased; the censored MLE recovers the rate.
	src := randx.NewSource(1)
	const n = 40000
	obs := make([]Observation, n)
	for i := range obs {
		x := src.Exponential(0.02)
		if x > 30 {
			obs[i] = Observation{Time: 30, Censored: true}
		} else {
			obs[i] = Observation{Time: x}
		}
	}
	fit, err := FitExponential(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Rate()-0.02)/0.02 > 0.05 {
		t.Fatalf("rate = %g, want 0.02", fit.Rate())
	}
	// The naive (uncensored) estimate would be far off: compare.
	var sum float64
	count := 0
	for _, o := range obs {
		if !o.Censored {
			sum += o.Time
			count++
		}
	}
	naive := float64(count) / sum
	if math.Abs(naive-0.02) < math.Abs(fit.Rate()-0.02) {
		t.Fatalf("censored MLE (%g) should beat naive (%g)", fit.Rate(), naive)
	}
}

func TestFitWeibullCensored(t *testing.T) {
	// Weibull(0.7, 100) with type-I censoring at 150.
	src := randx.NewSource(2)
	const n = 40000
	obs := make([]Observation, n)
	for i := range obs {
		x := src.Weibull(0.7, 100)
		if x > 150 {
			obs[i] = Observation{Time: 150, Censored: true}
		} else {
			obs[i] = Observation{Time: x}
		}
	}
	fit, err := FitWeibull(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape()-0.7)/0.7 > 0.05 {
		t.Fatalf("shape = %g, want 0.7", fit.Shape())
	}
	if math.Abs(fit.Scale()-100)/100 > 0.05 {
		t.Fatalf("scale = %g, want 100", fit.Scale())
	}
}

func TestFitWeibullUncensoredMatchesDistFit(t *testing.T) {
	src := randx.NewSource(3)
	obs := make([]Observation, 5000)
	for i := range obs {
		obs[i] = Observation{Time: src.Weibull(1.3, 50)}
	}
	fit, err := FitWeibull(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape()-1.3)/1.3 > 0.05 {
		t.Fatalf("shape = %g", fit.Shape())
	}
}

func TestFitErrors(t *testing.T) {
	censoredOnly := []Observation{{Time: 1, Censored: true}, {Time: 2, Censored: true}}
	if _, err := FitExponential(censoredOnly); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("exp all censored: want error")
	}
	if _, err := FitWeibull(censoredOnly); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("weibull all censored: want error")
	}
	identical := []Observation{{Time: 5}, {Time: 5}, {Time: 5}}
	if _, err := FitWeibull(identical); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("identical events: want error")
	}
	bad := []Observation{{Time: math.NaN()}}
	if _, err := FitExponential(bad); err == nil {
		t.Fatal("NaN: want error")
	}
}

func TestNodeLifetimes(t *testing.T) {
	obs, err := NodeLifetimes(0, 100, []float64{10, 30, 30, 70})
	if err != nil {
		t.Fatal(err)
	}
	// Gaps: 10, 20, (0 skipped), 40, then censored 30.
	want := []Observation{
		{Time: 10}, {Time: 20}, {Time: 40}, {Time: 30, Censored: true},
	}
	if len(obs) != len(want) {
		t.Fatalf("obs = %+v", obs)
	}
	for i := range want {
		if obs[i] != want[i] {
			t.Fatalf("obs[%d] = %+v, want %+v", i, obs[i], want[i])
		}
	}
	// No failures: one fully censored interval.
	obs, err = NodeLifetimes(0, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || !obs[0].Censored || obs[0].Time != 50 {
		t.Fatalf("obs = %+v", obs)
	}
	// Errors.
	if _, err := NodeLifetimes(10, 10, nil); err == nil {
		t.Fatal("empty window: want error")
	}
	if _, err := NodeLifetimes(0, 10, []float64{5, 3}); err == nil {
		t.Fatal("out of order: want error")
	}
	if _, err := NodeLifetimes(0, 10, []float64{20}); err == nil {
		t.Fatal("outside window: want error")
	}
}

func TestCensoringBiasDemonstration(t *testing.T) {
	// The practical point of the package: with heavy censoring, dropping
	// censored intervals underestimates MTBF; the censored Weibull fit
	// does not.
	src := randx.NewSource(4)
	const trueMean = 100.0
	shape := 0.7
	scale := trueMean / math.Gamma(1+1/shape)
	var obs []Observation
	var naive []float64
	for i := 0; i < 20000; i++ {
		x := src.Weibull(shape, scale)
		if x > 80 { // short observation window
			obs = append(obs, Observation{Time: 80, Censored: true})
			continue
		}
		obs = append(obs, Observation{Time: x})
		naive = append(naive, x)
	}
	fit, err := FitWeibull(obs)
	if err != nil {
		t.Fatal(err)
	}
	var naiveSum float64
	for _, x := range naive {
		naiveSum += x
	}
	naiveMean := naiveSum / float64(len(naive))
	if math.Abs(fit.Mean()-trueMean)/trueMean > 0.1 {
		t.Fatalf("censored fit mean = %g, want ~%g", fit.Mean(), trueMean)
	}
	if naiveMean > 0.6*trueMean {
		t.Fatalf("naive mean %g should be badly biased low", naiveMean)
	}
}
