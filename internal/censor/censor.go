// Package censor provides survival analysis with right-censored data. In
// failure traces the last observation of every node is censored: the node
// was still alive when data collection ended (November 2005 for LANL).
// Ignoring those truncated intervals biases TBF estimates downward; this
// package supplies the Kaplan–Meier survival estimator and censoring-aware
// maximum-likelihood fits for the exponential and Weibull models used in
// the paper.
package censor

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hpcfail/internal/dist"
	"hpcfail/internal/mathx"
)

// ErrInsufficientData is returned when an estimator needs more events.
var ErrInsufficientData = errors.New("censor: insufficient data")

// Observation is one (possibly censored) lifetime.
type Observation struct {
	// Time is the observed duration (> 0).
	Time float64
	// Censored is true when the unit was still alive at Time (the event
	// was not observed).
	Censored bool
}

// validate checks a sample, returning the number of uncensored events.
func validate(obs []Observation) (int, error) {
	events := 0
	for i, o := range obs {
		if !(o.Time > 0) || math.IsInf(o.Time, 0) || math.IsNaN(o.Time) {
			return 0, fmt.Errorf("censor: observation %d has time %g", i, o.Time)
		}
		if !o.Censored {
			events++
		}
	}
	return events, nil
}

// SurvivalPoint is one step of the Kaplan–Meier estimate S(t).
type SurvivalPoint struct {
	// T is an event time.
	T float64
	// S is the estimated survival probability just after T.
	S float64
	// AtRisk is the number of units at risk just before T.
	AtRisk int
	// Events is the number of deaths at T.
	Events int
}

// KaplanMeier computes the product-limit estimate of the survival function
// from right-censored observations.
func KaplanMeier(obs []Observation) ([]SurvivalPoint, error) {
	events, err := validate(obs)
	if err != nil {
		return nil, err
	}
	if events == 0 {
		return nil, fmt.Errorf("censor: no uncensored events: %w", ErrInsufficientData)
	}
	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		// Deaths before censorings at the same instant (convention).
		return !sorted[i].Censored && sorted[j].Censored
	})
	var out []SurvivalPoint
	s := 1.0
	i := 0
	n := len(sorted)
	for i < n {
		t := sorted[i].Time
		deaths, censored := 0, 0
		for i < n && sorted[i].Time == t {
			if sorted[i].Censored {
				censored++
			} else {
				deaths++
			}
			i++
		}
		atRisk := n - (i - deaths - censored)
		if deaths > 0 {
			s *= 1 - float64(deaths)/float64(atRisk)
			out = append(out, SurvivalPoint{T: t, S: s, AtRisk: atRisk, Events: deaths})
		}
	}
	return out, nil
}

// MedianSurvival returns the smallest event time at which the Kaplan–Meier
// survival estimate drops to 0.5 or below.
func MedianSurvival(curve []SurvivalPoint) (float64, error) {
	for _, p := range curve {
		if p.S <= 0.5 {
			return p.T, nil
		}
	}
	return math.NaN(), fmt.Errorf("censor: survival never reaches 0.5: %w", ErrInsufficientData)
}

// FitExponential computes the censoring-aware MLE of the exponential rate:
// rate = events / total observed time. Censored intervals contribute
// exposure but no event.
func FitExponential(obs []Observation) (dist.Exponential, error) {
	events, err := validate(obs)
	if err != nil {
		return dist.Exponential{}, err
	}
	if events == 0 {
		return dist.Exponential{}, fmt.Errorf("censor: no events: %w", ErrInsufficientData)
	}
	var exposure float64
	for _, o := range obs {
		exposure += o.Time
	}
	return dist.NewExponential(float64(events) / exposure)
}

// FitWeibull computes the censoring-aware MLE of the Weibull shape and
// scale. The profile-likelihood score for shape k is
//
//	Σ_all x^k ln x / Σ_all x^k − 1/k − (Σ_events ln x)/d = 0
//
// where the first sums run over all observations (censored included) and d
// is the number of uncensored events; scale follows as
// (Σ_all x^k / d)^(1/k).
func FitWeibull(obs []Observation) (dist.Weibull, error) {
	events, err := validate(obs)
	if err != nil {
		return dist.Weibull{}, err
	}
	if events < 2 {
		return dist.Weibull{}, fmt.Errorf("censor: %d events, need >= 2: %w", events, ErrInsufficientData)
	}
	var sumLogEvents float64
	maxX := 0.0
	distinct := false
	first := math.NaN()
	for _, o := range obs {
		if o.Time > maxX {
			maxX = o.Time
		}
		if !o.Censored {
			sumLogEvents += math.Log(o.Time)
			if math.IsNaN(first) {
				first = o.Time
			} else if o.Time != first {
				distinct = true
			}
		}
	}
	if !distinct {
		return dist.Weibull{}, fmt.Errorf("censor: all event times identical: %w", ErrInsufficientData)
	}
	d := float64(events)
	logMax := math.Log(maxX)
	score := func(k float64) float64 {
		var sw, swl float64
		for _, o := range obs {
			w := math.Exp(k * (math.Log(o.Time) - logMax))
			sw += w
			swl += w * math.Log(o.Time)
		}
		return swl/sw - 1/k - sumLogEvents/d
	}
	lo, hi, err := mathx.FindBracket(score, 1e-3, 5)
	if err != nil {
		return dist.Weibull{}, fmt.Errorf("censor: bracket weibull shape: %w", err)
	}
	if lo <= 0 {
		lo = 1e-6
	}
	k, err := mathx.Brent(score, lo, hi, 1e-11)
	if err != nil {
		return dist.Weibull{}, fmt.Errorf("censor: solve weibull shape: %w", err)
	}
	var sw float64
	for _, o := range obs {
		sw += math.Exp(k * (math.Log(o.Time) - logMax))
	}
	scale := maxX * math.Pow(sw/d, 1/k)
	return dist.NewWeibull(k, scale)
}

// NodeLifetimes converts a node's failure history into censored
// observations: the gaps between consecutive failures are events, and the
// interval from the last failure to the observation end is censored. start
// and end bound the observation window; failureTimes must be sorted
// offsets (in the same unit) within [start, end].
func NodeLifetimes(start, end float64, failureTimes []float64) ([]Observation, error) {
	if end <= start {
		return nil, fmt.Errorf("censor: empty window [%g, %g]", start, end)
	}
	prev := start
	var out []Observation
	for i, t := range failureTimes {
		if t < prev || t > end {
			return nil, fmt.Errorf("censor: failure time %d (%g) outside window or out of order", i, t)
		}
		if t > prev {
			out = append(out, Observation{Time: t - prev})
		}
		prev = t
	}
	if end > prev {
		out = append(out, Observation{Time: end - prev, Censored: true})
	}
	return out, nil
}
