package randx

import (
	"math"
	"testing"
)

const sampleN = 200000

func moments(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

func draw(t *testing.T, n int, gen func() float64) []float64 {
	t.Helper()
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = gen()
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
			t.Fatalf("sample %d is %v", i, xs[i])
		}
	}
	return xs
}

func TestDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
	c := NewSource(43)
	same := true
	d := NewSource(42)
	for i := 0; i < 100; i++ {
		if c.Float64() != d.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewSource(7)
	child1 := parent.Split()
	child2 := parent.Split()
	equal := 0
	for i := 0; i < 100; i++ {
		if child1.Float64() == child2.Float64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split children look correlated: %d equal draws", equal)
	}
}

func TestExponentialMoments(t *testing.T) {
	s := NewSource(1)
	rate := 2.5
	xs := draw(t, sampleN, func() float64 { return s.Exponential(rate) })
	mean, variance := moments(xs)
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("mean = %g, want %g", mean, 1/rate)
	}
	if math.Abs(variance-1/(rate*rate)) > 0.02 {
		t.Fatalf("variance = %g, want %g", variance, 1/(rate*rate))
	}
}

func TestWeibullMoments(t *testing.T) {
	s := NewSource(2)
	shape, scale := 0.7, 100.0
	xs := draw(t, sampleN, func() float64 { return s.Weibull(shape, scale) })
	mean, _ := moments(xs)
	want := scale * math.Gamma(1+1/shape)
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("mean = %g, want %g", mean, want)
	}
	for _, x := range xs[:100] {
		if x < 0 {
			t.Fatal("Weibull variate must be non-negative")
		}
	}
}

func TestGammaMoments(t *testing.T) {
	s := NewSource(3)
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 2}, {1, 1}, {2.5, 3}, {10, 0.5},
	} {
		xs := draw(t, sampleN, func() float64 { return s.Gamma(tc.shape, tc.scale) })
		mean, variance := moments(xs)
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean)/wantMean > 0.03 {
			t.Fatalf("gamma(%g,%g) mean = %g, want %g", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.08 {
			t.Fatalf("gamma(%g,%g) var = %g, want %g", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestLogNormalMoments(t *testing.T) {
	s := NewSource(4)
	mu, sigma := 4.0, 1.2
	xs := draw(t, sampleN, func() float64 { return s.LogNormal(mu, sigma) })
	// Compare log-domain moments: much tighter than heavy-tailed raw moments.
	logs := make([]float64, len(xs))
	for i, x := range xs {
		logs[i] = math.Log(x)
	}
	mean, variance := moments(logs)
	if math.Abs(mean-mu) > 0.02 {
		t.Fatalf("log-mean = %g, want %g", mean, mu)
	}
	if math.Abs(math.Sqrt(variance)-sigma) > 0.02 {
		t.Fatalf("log-stddev = %g, want %g", math.Sqrt(variance), sigma)
	}
}

func TestParetoTail(t *testing.T) {
	s := NewSource(5)
	xm, alpha := 10.0, 2.5
	xs := draw(t, sampleN, func() float64 { return s.Pareto(xm, alpha) })
	for _, x := range xs {
		if x < xm {
			t.Fatalf("Pareto variate %g below minimum %g", x, xm)
		}
	}
	// P(X > 2*xm) should be 2^-alpha.
	count := 0
	for _, x := range xs {
		if x > 2*xm {
			count++
		}
	}
	got := float64(count) / float64(len(xs))
	want := math.Pow(2, -alpha)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("tail probability = %g, want %g", got, want)
	}
}

func TestPoissonMoments(t *testing.T) {
	s := NewSource(6)
	for _, mean := range []float64{0.5, 3, 12, 45, 200} {
		xs := draw(t, 100000, func() float64 { return float64(s.Poisson(mean)) })
		m, v := moments(xs)
		if math.Abs(m-mean)/mean > 0.03 {
			t.Fatalf("poisson(%g) mean = %g", mean, m)
		}
		if math.Abs(v-mean)/mean > 0.08 {
			t.Fatalf("poisson(%g) variance = %g", mean, v)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("non-positive mean must give 0")
	}
}

func TestCategorical(t *testing.T) {
	s := NewSource(7)
	weights := []float64{1, 3, 6}
	counts := make([]int, 3)
	n := 120000
	for i := 0; i < n; i++ {
		counts[s.Categorical(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d frequency = %g, want %g", i, got, want)
		}
	}
	if got := s.Categorical([]float64{0, 0}); got != 1 {
		t.Fatalf("all-zero weights should return last index, got %d", got)
	}
}

func TestUniformRange(t *testing.T) {
	s := NewSource(8)
	for i := 0; i < 1000; i++ {
		u := s.Uniform(5, 9)
		if u < 5 || u >= 9 {
			t.Fatalf("uniform(5,9) = %g out of range", u)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	s := NewSource(9)
	if s.binomial(0, 0.5) != 0 {
		t.Fatal("binomial(0, p) must be 0")
	}
	if s.binomial(10, 0) != 0 {
		t.Fatal("binomial(n, 0) must be 0")
	}
	if s.binomial(10, 1) != 10 {
		t.Fatal("binomial(n, 1) must be n")
	}
}

func TestPerm(t *testing.T) {
	s := NewSource(10)
	p := s.Perm(10)
	if len(p) != 10 {
		t.Fatalf("len = %d", len(p))
	}
	seen := make(map[int]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	s := NewSource(11)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

// TestReseedMatchesNewSource pins the Reseed contract: after Reseed(seed)
// a source must produce exactly the stream a fresh NewSource(seed) would,
// across every draw kind the bootstrap kernels use — including the
// stateless ziggurat draws behind Normal and Exponential — regardless of
// how much the source was advanced beforehand.
func TestReseedMatchesNewSource(t *testing.T) {
	reused := NewSource(999)
	for _, seed := range []int64{0, 1, -3, 42, 1 << 50} {
		// Advance by a varying amount so stale state would be caught.
		for i := 0; i < int(seed&31)+7; i++ {
			reused.Float64()
			reused.Normal(0, 1)
			reused.Intn(100)
		}
		reused.Reseed(seed)
		fresh := NewSource(seed)
		for i := 0; i < 200; i++ {
			if a, b := reused.Float64(), fresh.Float64(); a != b {
				t.Fatalf("seed %d draw %d: Float64 %v vs %v", seed, i, a, b)
			}
			if a, b := reused.Intn(1000), fresh.Intn(1000); a != b {
				t.Fatalf("seed %d draw %d: Intn %v vs %v", seed, i, a, b)
			}
			if a, b := reused.Normal(0, 1), fresh.Normal(0, 1); a != b {
				t.Fatalf("seed %d draw %d: Normal %v vs %v", seed, i, a, b)
			}
			if a, b := reused.Exponential(1), fresh.Exponential(1); a != b {
				t.Fatalf("seed %d draw %d: Exponential %v vs %v", seed, i, a, b)
			}
		}
	}
}

// TestReseedZeroAlloc pins the property the per-rep bootstrap seeding
// depends on: Reseed is allocation-free.
func TestReseedZeroAlloc(t *testing.T) {
	s := NewSource(1)
	seed := int64(0)
	if avg := testing.AllocsPerRun(200, func() {
		s.Reseed(seed)
		seed++
		s.Float64()
	}); avg != 0 {
		t.Fatalf("Reseed allocated %.1f times on average; want 0", avg)
	}
}
