// Package randx provides deterministic random variate generation for the
// distributions used throughout the failure study. All samplers draw from an
// explicit *Source so that every dataset and simulation in the repository is
// reproducible from a seed.
package randx

import (
	"math"
	"math/rand"
	"time"
)

// Source is a deterministic random source. It wraps math/rand with an
// explicit seed so callers can never accidentally share global state.
type Source struct {
	rng *rand.Rand
	src rand.Source
}

// NewSource returns a Source seeded deterministically.
func NewSource(seed int64) *Source {
	src := rand.NewSource(seed)
	return &Source{rng: rand.New(src), src: src}
}

// Reseed resets the source in place to the exact state NewSource(seed)
// would produce, without allocating. It is the primitive behind
// counter-seeded loops (one deterministic seed per iteration, any
// iteration order): reseeding the underlying rand.Source directly leaves
// the wrapping *rand.Rand with no buffered state to clear, because
// math/rand's NormFloat64 and ExpFloat64 are stateless ziggurat draws.
func (s *Source) Reseed(seed int64) {
	s.src.Seed(seed)
}

// Split derives an independent child source from this one. It is used to
// give each system/node its own stream so that adding records for one system
// does not perturb another.
func (s *Source) Split() *Source {
	return NewSource(s.rng.Int63())
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Uniform returns a uniform variate in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Intn returns a uniform integer in [0, n).
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// JitterDuration scales d by a uniform factor in [1-frac, 1], drawing
// from src. It de-synchronizes retry storms: simultaneous failures that
// share a backoff schedule would otherwise retry in lockstep. frac is
// clamped to [0, 1]; a nil src returns d unchanged.
func JitterDuration(d time.Duration, frac float64, src *Source) time.Duration {
	if src == nil || frac <= 0 || d <= 0 {
		return d
	}
	if frac > 1 {
		frac = 1
	}
	return time.Duration(float64(d) * (1 - frac*src.Float64()))
}

// Normal returns a variate from N(mu, sigma²).
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.rng.NormFloat64()
}

// Exponential returns a variate from an exponential distribution with the
// given rate (mean 1/rate).
func (s *Source) Exponential(rate float64) float64 {
	return s.rng.ExpFloat64() / rate
}

// Weibull returns a variate from a Weibull distribution with shape k and
// scale lambda, via inverse-CDF sampling.
func (s *Source) Weibull(shape, scale float64) float64 {
	u := s.rng.Float64()
	// 1-u is uniform on (0, 1]; avoids Log(0).
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// LogNormal returns a variate X = exp(N(mu, sigma²)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Pareto returns a variate from a Pareto distribution with minimum xm and
// tail index alpha.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.rng.Float64()
	return xm / math.Pow(1-u, 1/alpha)
}

// Gamma returns a variate from a gamma distribution with the given shape and
// scale, using the Marsaglia–Tsang squeeze method (with the shape<1 boost).
func (s *Source) Gamma(shape, scale float64) float64 {
	if shape < 1 {
		// Boost: X(a) = X(a+1) * U^(1/a).
		u := s.rng.Float64()
		for u == 0 {
			u = s.rng.Float64()
		}
		return s.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = s.rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := s.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Poisson returns a Poisson variate with the given mean. For small means it
// uses Knuth multiplication; for large means a gamma/transform rejection
// split keeps the cost O(1).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Split: Poisson(mean) = Poisson(m) + Binomial-style remainder via the
	// standard gamma-split recursion (Devroye). m is a large integer chunk.
	m := math.Floor(mean * 7 / 8)
	x := s.Gamma(m, 1)
	if x > mean {
		// The m-th arrival exceeds the window: count arrivals before it.
		return s.binomial(int(m)-1, mean/x)
	}
	return int(m) + s.Poisson(mean-x)
}

// binomial draws a Binomial(n, p) variate by inversion for the sizes the
// Poisson splitter needs.
func (s *Source) binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	count := 0
	for i := 0; i < n; i++ {
		if s.rng.Float64() < p {
			count++
		}
	}
	return count
}

// Categorical draws an index from the given unnormalized weights. Weights
// must be non-negative; if all are zero the last index is returned.
func (s *Source) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := s.rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
