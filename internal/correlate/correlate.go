// Package correlate analyzes correlations between failures — the study the
// paper explicitly leaves open ("while we did not perform a rigorous
// analysis of correlations between nodes, this high number of simultaneous
// failures indicates the existence of a tight correlation", Section 5.3).
// It detects simultaneous-failure batches, quantifies pairwise node
// correlation of failure activity, and measures how batch frequency
// changes over a system's life.
package correlate

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"hpcfail/internal/failures"
)

// ErrInsufficientData is returned when an analysis needs more records.
var ErrInsufficientData = errors.New("correlate: insufficient data")

// Batch is a group of failures that started within the coincidence window
// of each other — the signature of a shared root cause (power event,
// network partition, interconnect fault).
type Batch struct {
	// Start is the first failure's start time.
	Start time.Time
	// Nodes are the distinct node IDs affected, sorted.
	Nodes []int
	// Records counts the failure records in the batch.
	Records int
	// Causes tallies the root causes within the batch.
	Causes map[failures.RootCause]int
}

// Size returns the number of distinct nodes hit.
func (b Batch) Size() int { return len(b.Nodes) }

// FindBatches groups a (single-system) dataset's records into batches of
// failures starting within window of the batch's first record. Batches of
// size 1 (no co-failure) are excluded.
func FindBatches(d *failures.Dataset, window time.Duration) ([]Batch, error) {
	if d.Len() == 0 {
		return nil, ErrInsufficientData
	}
	if window < 0 {
		return nil, fmt.Errorf("correlate: negative window %v", window)
	}
	records := d.Records() // already time-ordered
	var out []Batch
	i := 0
	for i < len(records) {
		first := records[i]
		j := i
		nodes := map[int]bool{}
		causes := map[failures.RootCause]int{}
		for j < len(records) && !records[j].Start.After(first.Start.Add(window)) {
			nodes[records[j].Node] = true
			causes[records[j].Cause]++
			j++
		}
		if len(nodes) >= 2 {
			b := Batch{Start: first.Start, Records: j - i, Causes: causes}
			for n := range nodes {
				b.Nodes = append(b.Nodes, n)
			}
			sort.Ints(b.Nodes)
			out = append(out, b)
		}
		i = j
	}
	return out, nil
}

// BatchStats summarizes the batch structure of a dataset.
type BatchStats struct {
	// Batches is the number of multi-node batches found.
	Batches int
	// RecordsInBatches counts the failure records involved.
	RecordsInBatches int
	// BatchFraction is the fraction of all records that are part of a
	// multi-node batch.
	BatchFraction float64
	// MeanSize and MaxSize describe batch sizes in distinct nodes.
	MeanSize float64
	MaxSize  int
}

// Summarize computes batch statistics over the dataset.
func Summarize(d *failures.Dataset, window time.Duration) (BatchStats, error) {
	batches, err := FindBatches(d, window)
	if err != nil {
		return BatchStats{}, err
	}
	s := BatchStats{Batches: len(batches)}
	totalSize := 0
	for _, b := range batches {
		s.RecordsInBatches += b.Records
		totalSize += b.Size()
		if b.Size() > s.MaxSize {
			s.MaxSize = b.Size()
		}
	}
	if d.Len() > 0 {
		s.BatchFraction = float64(s.RecordsInBatches) / float64(d.Len())
	}
	if len(batches) > 0 {
		s.MeanSize = float64(totalSize) / float64(len(batches))
	}
	return s, nil
}

// PairCorrelation is the Pearson correlation of two nodes' daily failure
// counts.
type PairCorrelation struct {
	NodeA, NodeB int
	R            float64
}

// DailyCountCorrelations computes pairwise Pearson correlations of daily
// failure counts between the given nodes of a (single-system) dataset,
// over the dataset's time span. Nodes with constant (usually all-zero)
// series are skipped.
func DailyCountCorrelations(d *failures.Dataset, nodes []int) ([]PairCorrelation, error) {
	if d.Len() < 2 {
		return nil, ErrInsufficientData
	}
	if len(nodes) < 2 {
		return nil, fmt.Errorf("correlate: need >= 2 nodes, got %d", len(nodes))
	}
	first, last, err := d.TimeSpan()
	if err != nil {
		return nil, fmt.Errorf("correlate: %w", err)
	}
	days := int(last.Sub(first).Hours()/24) + 1
	if days < 2 {
		return nil, fmt.Errorf("correlate: span of %d days too short: %w", days, ErrInsufficientData)
	}
	series := make(map[int][]float64, len(nodes))
	for _, n := range nodes {
		series[n] = make([]float64, days)
	}
	for _, r := range d.Records() {
		s, ok := series[r.Node]
		if !ok {
			continue
		}
		day := int(r.Start.Sub(first).Hours() / 24)
		if day >= 0 && day < days {
			s[day]++
		}
	}
	var out []PairCorrelation
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			r, ok := pearson(series[nodes[i]], series[nodes[j]])
			if !ok {
				continue
			}
			out = append(out, PairCorrelation{NodeA: nodes[i], NodeB: nodes[j], R: r})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("correlate: all series constant: %w", ErrInsufficientData)
	}
	return out, nil
}

// pearson returns the correlation of two equal-length series, reporting
// ok=false when either is constant.
func pearson(a, b []float64) (float64, bool) {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, false
	}
	return cov / math.Sqrt(va*vb), true
}

// MeanCorrelation averages the pairwise correlations.
func MeanCorrelation(pairs []PairCorrelation) (float64, error) {
	if len(pairs) == 0 {
		return math.NaN(), ErrInsufficientData
	}
	var sum float64
	for _, p := range pairs {
		sum += p.R
	}
	return sum / float64(len(pairs)), nil
}

// EraComparison contrasts batch behaviour before and after a boundary —
// the paper's observation that system 20's simultaneous failures are an
// early-life phenomenon.
type EraComparison struct {
	EarlyFraction, LateFraction float64
}

// CompareEras computes the batch fraction before and after the boundary.
func CompareEras(d *failures.Dataset, boundary time.Time, window time.Duration) (EraComparison, error) {
	first, last, err := d.TimeSpan()
	if err != nil {
		return EraComparison{}, fmt.Errorf("correlate: %w", err)
	}
	early, err := Summarize(d.Between(first, boundary), window)
	if err != nil {
		return EraComparison{}, fmt.Errorf("correlate early era: %w", err)
	}
	late, err := Summarize(d.Between(boundary, last.Add(time.Second)), window)
	if err != nil {
		return EraComparison{}, fmt.Errorf("correlate late era: %w", err)
	}
	return EraComparison{
		EarlyFraction: early.BatchFraction,
		LateFraction:  late.BatchFraction,
	}, nil
}
