package correlate

import (
	"errors"
	"math"
	"testing"
	"time"

	"hpcfail/internal/failures"
	"hpcfail/internal/lanl"
)

var t0 = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

func rec(node, startMin int) failures.Record {
	return failures.Record{
		System:   1,
		Node:     node,
		HW:       "E",
		Workload: failures.WorkloadCompute,
		Cause:    failures.CauseHardware,
		Start:    t0.Add(time.Duration(startMin) * time.Minute),
		End:      t0.Add(time.Duration(startMin+30) * time.Minute),
	}
}

func TestFindBatches(t *testing.T) {
	d, err := failures.NewDataset([]failures.Record{
		rec(1, 0), rec(2, 0), rec(3, 1), // batch of 3 nodes
		rec(4, 100),              // singleton
		rec(5, 200), rec(5, 200), // same node twice: NOT a multi-node batch
		rec(6, 300), rec(7, 302), // batch of 2 within 5-minute window
	})
	if err != nil {
		t.Fatal(err)
	}
	batches, err := FindBatches(d, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %+v", batches)
	}
	if batches[0].Size() != 3 || batches[0].Records != 3 {
		t.Fatalf("first batch = %+v", batches[0])
	}
	if batches[0].Nodes[0] != 1 || batches[0].Nodes[2] != 3 {
		t.Fatalf("first batch nodes = %v", batches[0].Nodes)
	}
	if batches[1].Size() != 2 {
		t.Fatalf("second batch = %+v", batches[1])
	}
	if batches[0].Causes[failures.CauseHardware] != 3 {
		t.Fatalf("causes = %v", batches[0].Causes)
	}
}

func TestFindBatchesErrors(t *testing.T) {
	empty, err := failures.NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FindBatches(empty, time.Minute); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("empty: want ErrInsufficientData")
	}
	d, err := failures.NewDataset([]failures.Record{rec(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FindBatches(d, -time.Minute); err == nil {
		t.Fatal("negative window: want error")
	}
}

func TestSummarize(t *testing.T) {
	d, err := failures.NewDataset([]failures.Record{
		rec(1, 0), rec(2, 0),
		rec(3, 100),
		rec(4, 200), rec(5, 200), rec(6, 200),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(d, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if s.Batches != 2 || s.RecordsInBatches != 5 || s.MaxSize != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.BatchFraction-5.0/6) > 1e-12 {
		t.Fatalf("fraction = %g", s.BatchFraction)
	}
	if math.Abs(s.MeanSize-2.5) > 1e-12 {
		t.Fatalf("mean size = %g", s.MeanSize)
	}
}

func TestDailyCountCorrelations(t *testing.T) {
	// Nodes 1 and 2 fail together every day; node 3 fails on alternate
	// days — correlation(1,2) should be high, correlation(1,3) negative
	// or low.
	var records []failures.Record
	for day := 0; day < 60; day++ {
		base := day * 24 * 60
		if day%2 == 0 {
			records = append(records, rec(1, base), rec(2, base+10))
		} else {
			records = append(records, rec(3, base))
		}
	}
	d, err := failures.NewDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := DailyCountCorrelations(d, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[[2]int]float64)
	for _, p := range pairs {
		got[[2]int{p.NodeA, p.NodeB}] = p.R
	}
	if got[[2]int{1, 2}] < 0.9 {
		t.Fatalf("corr(1,2) = %g, want ~1", got[[2]int{1, 2}])
	}
	if got[[2]int{1, 3}] > -0.9 {
		t.Fatalf("corr(1,3) = %g, want ~-1", got[[2]int{1, 3}])
	}
	mean, err := MeanCorrelation(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(mean) {
		t.Fatal("mean is NaN")
	}
}

func TestDailyCountCorrelationsErrors(t *testing.T) {
	empty, err := failures.NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DailyCountCorrelations(empty, []int{1, 2}); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("empty: want error")
	}
	d, err := failures.NewDataset([]failures.Record{rec(1, 0), rec(2, 2000)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DailyCountCorrelations(d, []int{1}); err == nil {
		t.Fatal("single node: want error")
	}
	// Nodes absent from the data: all-zero series are constant.
	if _, err := DailyCountCorrelations(d, []int{8, 9}); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("constant series: want error")
	}
	if _, err := MeanCorrelation(nil); !errors.Is(err, ErrInsufficientData) {
		t.Fatal("no pairs: want error")
	}
}

func TestEraComparisonOnReferenceTrace(t *testing.T) {
	// System 20's early era has far more correlated batches than its late
	// era — the Section 5.3 observation, now quantified.
	d, err := lanl.NewGenerator(lanl.Config{Seed: 1, Systems: []int{20}}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	boundary := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	cmp, err := CompareEras(d, boundary, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.EarlyFraction < 0.3 {
		t.Errorf("early batch fraction = %.3f, want > 0.3", cmp.EarlyFraction)
	}
	if cmp.LateFraction > cmp.EarlyFraction/3 {
		t.Errorf("late fraction %.3f should be far below early %.3f",
			cmp.LateFraction, cmp.EarlyFraction)
	}
}

func TestCompareErasErrors(t *testing.T) {
	empty, err := failures.NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareEras(empty, t0, time.Minute); err == nil {
		t.Fatal("empty: want error")
	}
}
