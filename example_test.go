package hpcfail_test

import (
	"fmt"
	"log"

	"hpcfail"
)

// ExampleFitAll reproduces the paper's central methodology: fit the four
// standard reliability distributions to a time-between-failures sample and
// rank them by negative log-likelihood.
func ExampleFitAll() {
	data, err := hpcfail.NewGenerator(hpcfail.GeneratorConfig{Seed: 1, Systems: []int{20}}).Generate()
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := hpcfail.FitAll(data.BySystem(20).PositiveInterarrivals())
	if err != nil {
		log.Fatal(err)
	}
	best, err := cmp.Best()
	if err != nil {
		log.Fatal(err)
	}
	wb, ok := best.Dist.(hpcfail.Weibull)
	if !ok {
		log.Fatal("best fit is not the Weibull")
	}
	fmt.Printf("best family: %s\n", best.Family)
	fmt.Printf("decreasing hazard: %v\n", wb.HazardDecreasing())
	// Output:
	// best family: weibull
	// decreasing hazard: true
}

// ExampleYoungInterval derives a checkpoint interval from a fitted failure
// model, the application the paper's introduction motivates.
func ExampleYoungInterval() {
	tbf, err := hpcfail.NewWeibull(0.7, 120)
	if err != nil {
		log.Fatal(err)
	}
	tau, err := hpcfail.YoungInterval(0.25, tbf.Mean())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint every %.0f hours\n", tau)
	// Output:
	// checkpoint every 9 hours
}

// ExampleSystemByID looks up a system of the paper's Table 1.
func ExampleSystemByID() {
	sys, err := hpcfail.SystemByID(20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system %d: type %s, %d nodes, %d processors\n",
		sys.ID, sys.HW, sys.Nodes, sys.Procs)
	// Output:
	// system 20: type G, 49 nodes, 6152 processors
}

// ExampleDataset_ZeroInterarrivalFraction measures simultaneous failures —
// the correlation signal of the paper's Section 5.3.
func ExampleDataset_ZeroInterarrivalFraction() {
	data, err := hpcfail.NewGenerator(hpcfail.GeneratorConfig{Seed: 1, Systems: []int{20}}).Generate()
	if err != nil {
		log.Fatal(err)
	}
	early := data.Between(hpcfail.CollectionStart, hpcfail.CollectionStart.AddDate(3, 0, 0))
	fmt.Printf("early zero-interarrival fraction above 0.3: %v\n",
		early.ZeroInterarrivalFraction() > 0.3)
	// Output:
	// early zero-interarrival fraction above 0.3: true
}
