// Checkpointing: fit the paper's Weibull TBF model to a node's failure
// history and use it to choose a checkpoint interval, comparing the
// classic Young/Daly prescriptions (which assume memoryless failures)
// against a simulation-driven optimum under the fitted distribution.
//
// This is the use case the paper's introduction cites: "the design and
// analysis of checkpoint strategies relies on certain statistical
// properties of failures."
//
// Run with: go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"

	"hpcfail/internal/checkpoint"
	"hpcfail/internal/dist"
	"hpcfail/internal/lanl"
	"hpcfail/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Build the failure history of system 20 and fit its late-production
	// per-node TBF, as the paper does for Figure 6(b).
	dataset, err := lanl.NewGenerator(lanl.Config{Seed: 1, Systems: []int{20}}).Generate()
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	node := dataset.ByNode(20, 22)
	tbfSeconds := node.PositiveInterarrivals()
	fitted, err := dist.FitWeibull(tbfSeconds)
	if err != nil {
		return fmt.Errorf("fit weibull: %w", err)
	}
	mtbfHours := fitted.Mean() / 3600
	fmt.Printf("node 22 of system 20: %d failures, fitted Weibull %s\n",
		node.Len(), fitted.Params())
	fmt.Printf("MTBF %.0f hours, hazard decreasing: %v\n\n", mtbfHours, fitted.HazardDecreasing())

	// 2. Classic prescriptions from the memoryless model.
	const checkpointCost = 0.25 // hours to write one checkpoint
	const restartCost = 0.5     // hours to restart after a failure
	young, err := checkpoint.YoungInterval(checkpointCost, mtbfHours)
	if err != nil {
		return err
	}
	daly, err := checkpoint.DalyInterval(checkpointCost, mtbfHours)
	if err != nil {
		return err
	}
	fmt.Printf("Young interval: %.1f h    Daly interval: %.1f h\n\n", young, daly)

	// 3. Evaluate intervals under BOTH failure models: the exponential the
	// formulas assume, and the Weibull the data actually follows. The TBF
	// distribution for simulation is in hours.
	wbHours, err := dist.NewWeibull(fitted.Shape(), fitted.Scale()/3600)
	if err != nil {
		return err
	}
	expHours, err := dist.NewExponential(1 / mtbfHours)
	if err != nil {
		return err
	}
	mkCfg := func(tbf dist.Continuous) checkpoint.SimConfig {
		return checkpoint.SimConfig{
			TBF:            tbf,
			CheckpointCost: checkpointCost,
			RestartCost:    restartCost,
			WorkHours:      20000,
			Replications:   32,
			Seed:           7,
		}
	}
	table := report.NewTable("Interval (h)", "Efficiency (exponential)", "Efficiency (fitted Weibull)")
	for _, tau := range []float64{young / 4, young / 2, young, daly, 2 * young, 8 * young} {
		effExp, err := checkpoint.SimulateEfficiency(mkCfg(expHours), tau)
		if err != nil {
			return err
		}
		effWb, err := checkpoint.SimulateEfficiency(mkCfg(wbHours), tau)
		if err != nil {
			return err
		}
		table.AddRow(fmt.Sprintf("%.1f", tau),
			fmt.Sprintf("%.4f", effExp), fmt.Sprintf("%.4f", effWb))
	}
	fmt.Print(table.String())

	// 4. Search for the true optimum under the fitted distribution.
	tau, eff, err := checkpoint.OptimizeInterval(mkCfg(wbHours), young/6, young*8)
	if err != nil {
		return err
	}
	fmt.Printf("\noptimized interval under fitted Weibull: %.1f h (efficiency %.4f)\n", tau, eff)
	fmt.Println("note how slowly efficiency degrades past the optimum under the Weibull:")
	fmt.Println("with a decreasing hazard rate, surviving long makes imminent failure less")
	fmt.Println("likely, so over-long intervals are forgiven — a direct consequence of the")
	fmt.Println("paper's finding that TBF is Weibull with shape 0.7-0.8, not exponential.")
	return nil
}
