// Survival: the reliability-engineering follow-ups the paper points at but
// leaves open — censoring-aware lifetime estimation, nonparametric hazard
// rates, statistical trend tests and correlation analysis — run on the
// synthetic LANL trace through the public facade.
//
// Run with: go run ./examples/survival
package main

import (
	"fmt"
	"log"
	"time"

	"hpcfail"
	"hpcfail/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	data, err := hpcfail.NewGenerator(hpcfail.GeneratorConfig{Seed: 1, Systems: []int{20}}).Generate()
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	sys, err := hpcfail.SystemByID(20)
	if err != nil {
		return err
	}

	// 1. Censoring-aware TBF estimation. Every node's history ends with a
	// truncated interval (the node was alive at the end of data
	// collection); dropping those intervals biases MTBF low. Build
	// censored observations for a batch of compute nodes and compare the
	// censored Weibull fit against the naive one.
	var obs []hpcfail.CensoredObservation
	var naive []float64
	horizon := sys.End.Sub(sys.Start).Hours()
	for node := 1; node <= 20; node++ {
		var offsets []float64
		for _, r := range data.ByNode(20, node).Records() {
			offsets = append(offsets, r.Start.Sub(sys.Start).Hours())
		}
		nodeObs, err := hpcfail.NodeLifetimes(0, horizon, offsets)
		if err != nil {
			return fmt.Errorf("node %d lifetimes: %w", node, err)
		}
		obs = append(obs, nodeObs...)
		for _, o := range nodeObs {
			if !o.Censored {
				naive = append(naive, o.Time)
			}
		}
	}
	censoredFit, err := hpcfail.FitWeibullCensored(obs)
	if err != nil {
		return fmt.Errorf("censored fit: %w", err)
	}
	naiveFit, err := hpcfail.FitWeibull(naive)
	if err != nil {
		return fmt.Errorf("naive fit: %w", err)
	}
	fmt.Println("Censoring-aware TBF estimation (system 20, nodes 1-20)")
	fmt.Printf("  observations: %d (%d censored)\n", len(obs), len(obs)-len(naive))
	fmt.Printf("  naive Weibull:    %s  MTBF %.0f h\n", naiveFit.Params(), naiveFit.Mean())
	fmt.Printf("  censored Weibull: %s  MTBF %.0f h\n\n", censoredFit.Params(), censoredFit.Mean())

	// 2. Nonparametric hazard: does the data itself show the decreasing
	// hazard the Weibull shape implies, without assuming the model?
	tbfHours := make([]float64, 0)
	for _, s := range data.PositiveInterarrivals() {
		tbfHours = append(tbfHours, s/3600)
	}
	est, err := hpcfail.EmpiricalHazard(tbfHours, 8)
	if err != nil {
		return fmt.Errorf("empirical hazard: %w", err)
	}
	fmt.Println("Empirical hazard of system-wide TBF (failures per hour, by uptime octile)")
	labels := make([]string, len(est.Rates))
	for i := range est.Rates {
		labels[i] = fmt.Sprintf("[%.1f, %.1f)h", est.Edges[i], est.Edges[i+1])
	}
	fmt.Print(report.BarChart(labels, est.Rates, 40))
	fmt.Printf("  trend: %s\n", est.Trend())
	mrl0, err := hpcfail.MeanResidualLife(tbfHours, 0)
	if err != nil {
		return err
	}
	mrl24, err := hpcfail.MeanResidualLife(tbfHours, 24)
	if err != nil {
		return err
	}
	fmt.Printf("  mean residual life: %.1f h at age 0, %.1f h after 24 quiet hours\n\n", mrl0, mrl24)

	// 3. Trend tests: the Figure 4 lifecycle shapes as statistics.
	events := data.OffsetHours(sys.Start)
	early := events[:0:0]
	cut := 20 * 30.44 * 24.0
	for _, t := range events {
		if t <= cut {
			early = append(early, t)
		}
	}
	lap, err := hpcfail.LaplaceTest(early, cut, 0.05)
	if err != nil {
		return fmt.Errorf("laplace: %w", err)
	}
	pl, err := hpcfail.FitPowerLaw(early, cut)
	if err != nil {
		return fmt.Errorf("power law: %w", err)
	}
	fmt.Println("Trend of system 20's first 20 months (the Figure 4b ramp)")
	fmt.Printf("  Laplace test: U = %.1f, p = %.2g -> %s\n", lap.U, lap.P, lap.Verdict)
	fmt.Printf("  Crow-AMSAA:   beta = %.2f -> %s\n\n", pl.Beta, pl.Verdict(0.1))

	// 4. Correlation: quantify the early simultaneous failures.
	boundary := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	eras, err := hpcfail.CompareBatchEras(data, boundary, time.Minute)
	if err != nil {
		return fmt.Errorf("compare eras: %w", err)
	}
	fmt.Println("Correlated failure batches (multi-node failures within one minute)")
	fmt.Printf("  1996-1999: %.0f%% of failures arrive in batches\n", 100*eras.EarlyFraction)
	fmt.Printf("  2000-2005: %.0f%%\n", 100*eras.LateFraction)
	fmt.Println("  the early cluster-wide correlation the paper flags disappears as the")
	fmt.Println("  system matures - checkpoint placement should not assume independence")
	fmt.Println("  during a system's first years.")
	return nil
}
