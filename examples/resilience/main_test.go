package main

import "testing"

// TestRun guards the example against bit-rot: it must execute end to end
// without error — run itself fails unless the resilient policy strictly
// beats the naive one on goodput. Output goes to the test log.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}

// TestResilientBeatsNaive pins the acceptance criterion directly: under
// the seeded correlated-burst scenario, fencing plus backoff delivers
// strictly more goodput than immediate retry with no fencing.
func TestResilientBeatsNaive(t *testing.T) {
	naive, resilient, err := compare()
	if err != nil {
		t.Fatal(err)
	}
	if resilient.Goodput <= naive.Goodput {
		t.Fatalf("resilient goodput %.4f <= naive %.4f", resilient.Goodput, naive.Goodput)
	}
	if resilient.JobsCompleted < naive.JobsCompleted {
		t.Fatalf("resilient completed %d jobs, naive %d", resilient.JobsCompleted, naive.JobsCompleted)
	}
}

// TestCompareIsDeterministic re-runs the full comparison and demands
// identical metrics: the demo's numbers are reproducible run to run.
func TestCompareIsDeterministic(t *testing.T) {
	n1, r1, err := compare()
	if err != nil {
		t.Fatal(err)
	}
	n2, r2, err := compare()
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("naive metrics differ:\n%+v\n%+v", n1, n2)
	}
	if r1 != r2 {
		t.Fatalf("resilient metrics differ:\n%+v\n%+v", r1, r2)
	}
}
