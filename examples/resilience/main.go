// Resilience: script the paper's worst operational case — recurring
// spatially-correlated failure bursts of the kind Figure 6 shows for
// system 20, where one rack-sized slice of the machine fails again and
// again — and compare two failure-response policies on the same seeded
// fault sequence:
//
//   - naive: failed jobs are retried immediately, and the scheduler
//     happily re-places them on the nodes that just failed;
//   - resilient: retries back off exponentially (with jitter, so the
//     retry herd de-synchronizes) and a fencing policy blacklists any
//     node with two observed failures in a sliding window, routing
//     work to the healthy part of the machine.
//
// Jobs run without checkpoints, so every kill restarts them from
// scratch — the regime in which placement on burst-prone nodes is
// fatal. The resilient policy must deliver strictly more goodput.
//
// Run with: go run ./examples/resilience
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"hpcfail/internal/dist"
	"hpcfail/internal/report"
	"hpcfail/internal/resilience"
	"hpcfail/internal/sim"
)

const (
	nodes       = 24 // 8 of them, in scattered two-node slices, take the bursts
	burstSpan   = 2
	jobs        = 16
	nodesPerJob = 2
	workHours   = 600
	horizon     = 2000 * time.Hour
	clusterSeed = 11
	injectSeed  = 23
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// flakyStarts are the first nodes of the two-node slices the bursts
// strike. They are deliberately scattered across the machine so most
// victims share a job with a healthy node: a naive policy then drags
// healthy capacity into every kill cycle.
var flakyStarts = []int{0, 5, 11, 17}

// scenario scripts bursts striking the flaky slices every 150 hours for
// most of the horizon: each burst fails every node in its range with
// probability 0.9 and a 10-hour repair, spread over a 2-hour window.
// The slices are staggered 37 hours apart so only one slice is down at
// a time — a naive scheduler then rebuilds the same doomed placement as
// soon as the slice repairs.
func scenario() resilience.Scenario {
	var sc resilience.Scenario
	for at := 100 * time.Hour; at < 3200*time.Hour; at += 150 * time.Hour {
		for k, first := range flakyStarts {
			sc.Bursts = append(sc.Bursts, resilience.Burst{
				At: at + time.Duration(k)*37*time.Hour, FirstNode: first, Span: burstSpan,
				FailProb: 0.9, RepairHours: 10, Spread: 2 * time.Hour,
			})
		}
	}
	return sc
}

// runPolicy executes the job stream under one resilience configuration
// against the same seeded cluster and fault sequence.
func runPolicy(res *sim.ResilienceConfig) (sim.Metrics, error) {
	const shape = 0.7
	mtbf := 10000.0 // rare natural failures; the bursts dominate
	tbf, err := dist.NewWeibull(shape, mtbf/math.Gamma(1+1/shape))
	if err != nil {
		return sim.Metrics{}, err
	}
	ttr, err := dist.NewLogNormal(0, 1.2)
	if err != nil {
		return sim.Metrics{}, err
	}
	specs := make([]sim.NodeSpec, nodes)
	for i := range specs {
		specs[i] = sim.NodeSpec{TBF: tbf, TTR: ttr}
	}
	c, err := sim.NewCluster(sim.ClusterConfig{
		Nodes: specs, Scheduler: sim.FirstFitScheduler{}, Seed: clusterSeed, Resilience: res,
	})
	if err != nil {
		return sim.Metrics{}, err
	}
	if _, err := c.Inject(scenario(), injectSeed); err != nil {
		return sim.Metrics{}, err
	}
	for i := 0; i < jobs; i++ {
		if err := c.Submit(sim.JobConfig{
			ID:               i,
			WorkHours:        workHours,
			RestartCostHours: 0.5,
		}, nodesPerJob); err != nil {
			return sim.Metrics{}, err
		}
	}
	if err := c.Run(horizon); err != nil {
		return sim.Metrics{}, err
	}
	return c.Collect(), nil
}

// policies returns the two configurations under comparison.
func policies() (naive, resilient *sim.ResilienceConfig, err error) {
	detect := resilience.FixedDetection{Delay: 6 * time.Minute}
	naive = &sim.ResilienceConfig{
		Retry:     resilience.ImmediateRetry{},
		Detection: detect,
	}
	fence, err := resilience.NewWindowFencing(2, 400*time.Hour, 250*time.Hour)
	if err != nil {
		return nil, nil, err
	}
	resilient = &sim.ResilienceConfig{
		Retry: resilience.ExponentialBackoff{
			Base: 30 * time.Minute, Max: 4 * time.Hour, Jitter: 0.5,
		},
		Fencing:   fence,
		Detection: detect,
	}
	return naive, resilient, nil
}

// compare runs both policies and returns their metrics.
func compare() (naive, resilient sim.Metrics, err error) {
	naiveCfg, resilientCfg, err := policies()
	if err != nil {
		return sim.Metrics{}, sim.Metrics{}, err
	}
	if naive, err = runPolicy(naiveCfg); err != nil {
		return sim.Metrics{}, sim.Metrics{}, fmt.Errorf("naive: %w", err)
	}
	if resilient, err = runPolicy(resilientCfg); err != nil {
		return sim.Metrics{}, sim.Metrics{}, fmt.Errorf("resilient: %w", err)
	}
	return naive, resilient, nil
}

func run() error {
	naive, resilient, err := compare()
	if err != nil {
		return err
	}
	table := report.NewTable("Policy", "Jobs done", "Retries", "Lost work (h)", "Fenced (h)", "Goodput")
	for _, row := range []struct {
		name string
		m    sim.Metrics
	}{
		{"naive (immediate retry)", naive},
		{"backoff + fencing", resilient},
	} {
		table.AddRow(row.name,
			fmt.Sprintf("%d", row.m.JobsCompleted),
			fmt.Sprintf("%d", row.m.TotalRetries),
			fmt.Sprintf("%.0f", row.m.TotalLostWorkHours),
			fmt.Sprintf("%.0f", row.m.FencedNodeHours),
			fmt.Sprintf("%.4f", row.m.Goodput))
	}
	fmt.Printf("%d nodes, recurring bursts on %d scattered %d-node slices, %d uncheckpointed %dh jobs\n\n",
		nodes, len(flakyStarts), burstSpan, jobs, workHours)
	fmt.Print(table.String())
	if resilient.Goodput <= naive.Goodput {
		return fmt.Errorf("resilient goodput %.4f did not beat naive %.4f",
			resilient.Goodput, naive.Goodput)
	}
	fmt.Printf("\nfencing the burst-prone nodes and backing off retries delivers %.1f%% more goodput:\n",
		100*(resilient.Goodput/naive.Goodput-1))
	fmt.Println("the naive policy keeps re-placing jobs on the slices of the machine that Figure 6")
	fmt.Println("style correlated bursts strike over and over, restarting them from scratch each time.")
	return nil
}
