// Scheduling: build a simulated cluster whose node reliabilities mirror the
// paper's Figure 3 finding — failure rates vary strongly across the nodes
// of one system — and compare a reliability-oblivious scheduler against
// one that places jobs on the nodes with the best failure history, the
// application suggested in Section 5.1 ("assigning critical jobs or jobs
// with high recovery time to more reliable nodes").
//
// Run with: go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"hpcfail/internal/dist"
	"hpcfail/internal/lanl"
	"hpcfail/internal/report"
	"hpcfail/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Derive per-node failure rates from system 20's 9-year trace,
	// exactly the heterogeneity of Figure 3(a): ordinary compute nodes
	// spread ~3x, graphics nodes ~4x worse than the median.
	dataset, err := lanl.NewGenerator(lanl.Config{Seed: 1, Systems: []int{20}}).Generate()
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	sys, err := lanl.SystemByID(20)
	if err != nil {
		return err
	}
	years := sys.ProductionYears()
	counts := dataset.CountByNode()

	// 2. Build a simulated node per physical node: Weibull TBF with shape
	// 0.7 (the paper's fit) at the node's observed rate; lognormal repairs
	// like Table 2's hardware row. Keep the history score alongside.
	const shape = 0.7
	ttr, err := dist.NewLogNormal(math.Log(1.0), 1.2) // median 1h repairs
	if err != nil {
		return err
	}
	var specs []sim.NodeSpec
	score := make(map[int]float64)
	simID := 0
	for nodeID := 1; nodeID < sys.Nodes; nodeID++ { // skip short-lived node 0
		n := counts[nodeID]
		if n == 0 {
			continue
		}
		mtbfHours := years * 24 * 365.25 / float64(n)
		tbf, err := dist.NewWeibull(shape, mtbfHours/math.Gamma(1+1/shape))
		if err != nil {
			return err
		}
		specs = append(specs, sim.NodeSpec{TBF: tbf, TTR: ttr})
		// Score: fewer historical failures is better.
		score[simID] = -float64(n)
		simID++
	}
	fmt.Printf("cluster of %d nodes with MTBFs from system 20's per-node failure counts\n\n", len(specs))

	// 3. Run the same job mix under both schedulers: a reliability-
	// oblivious baseline, and placement by 9-year failure history.
	runPolicy := func(sched sim.Scheduler) (sim.Metrics, error) {
		c, err := sim.NewCluster(sim.ClusterConfig{Nodes: specs, Scheduler: sched, Seed: 11})
		if err != nil {
			return sim.Metrics{}, err
		}
		for i := 0; i < 12; i++ {
			if err := c.Submit(sim.JobConfig{
				ID:                  i,
				WorkHours:           1500,
				CheckpointInterval:  12,
				CheckpointCostHours: 0.25,
				RestartCostHours:    0.5,
			}, 2); err != nil {
				return sim.Metrics{}, err
			}
		}
		if err := c.Run(1e6 * time.Hour); err != nil {
			return sim.Metrics{}, err
		}
		return c.Collect(), nil
	}

	table := report.NewTable("Scheduler", "Jobs done", "Interruptions", "Lost work (h)", "Mean efficiency")
	policies := []sim.Scheduler{
		sim.FirstFitScheduler{},
		sim.ScoredScheduler{PolicyName: "history-aware", Score: score},
	}
	for _, sched := range policies {
		m, err := runPolicy(sched)
		if err != nil {
			return fmt.Errorf("%s: %w", sched.Name(), err)
		}
		table.AddRow(sched.Name(),
			fmt.Sprintf("%d", m.JobsCompleted),
			fmt.Sprintf("%d", m.TotalInterruptions),
			fmt.Sprintf("%.0f", m.TotalLostWorkHours),
			fmt.Sprintf("%.4f", m.MeanEfficiency))
	}
	fmt.Print(table.String())
	fmt.Println("\nplacement by 9-year failure history avoids the failure-prone nodes the")
	fmt.Println("paper shows exist in every system (graphics/front-end nodes, Figure 3a),")
	fmt.Println("cutting interruptions and wasted work for the same job stream.")
	return nil
}
