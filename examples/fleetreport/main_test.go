package main

import "testing"

// TestRun guards the example against bit-rot: it must execute end to end
// without error. Output goes to the test log.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
