// Fleetreport: an operator-style reliability report across the full
// 22-system fleet — the kind of summary a site like LANL would build from
// its remedy database. It combines several of the paper's analyses into one
// actionable view: per-system rates and repair medians, the fleet's worst
// nodes, and estimated steady-state availability per system.
//
// Run with: go run ./examples/fleetreport
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"hpcfail/internal/analysis"
	"hpcfail/internal/dist"
	"hpcfail/internal/engine"
	"hpcfail/internal/failures"
	"hpcfail/internal/lanl"
	"hpcfail/internal/report"
	"hpcfail/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dataset, err := lanl.NewGenerator(lanl.Config{Seed: 1}).Generate()
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	catalog := lanl.Catalog()

	// Per-system health table: rate, repair median, availability estimate.
	rates, err := analysis.FailureRates(dataset, catalog)
	if err != nil {
		return err
	}
	repairs, err := analysis.RepairTimePerSystem(dataset, catalog)
	if err != nil {
		return err
	}
	repairBySystem := make(map[int]analysis.SystemRepair, len(repairs))
	for _, r := range repairs {
		repairBySystem[r.System] = r
	}
	table := report.NewTable("System", "HW", "Failures/yr", "Median repair (min)", "Availability")
	for _, r := range rates {
		rep := repairBySystem[r.System]
		sys, err := lanl.SystemByID(r.System)
		if err != nil {
			return err
		}
		// Steady-state node availability: MTBF/(MTBF+MTTR) from per-node
		// failure rate and mean repair.
		perNodePerYear := r.PerYear / float64(sys.Nodes)
		mtbfMin := 365.25 * 24 * 60 / perNodePerYear
		avail := mtbfMin / (mtbfMin + rep.MeanMinutes)
		table.AddRow(
			fmt.Sprintf("%d", r.System),
			string(r.HW),
			fmt.Sprintf("%.0f", r.PerYear),
			fmt.Sprintf("%.0f", rep.MedianMinutes),
			fmt.Sprintf("%.4f", avail),
		)
	}
	fmt.Println("Fleet health (per system)")
	fmt.Print(table.String())

	// Worst nodes fleet-wide: candidates for replacement or for hosting
	// only low-priority work.
	type nodeRate struct {
		system, node, count int
	}
	var worst []nodeRate
	for _, id := range dataset.Systems() {
		sub := dataset.BySystem(id)
		for node, count := range sub.CountByNode() {
			worst = append(worst, nodeRate{id, node, count})
		}
	}
	sort.Slice(worst, func(i, j int) bool { return worst[i].count > worst[j].count })
	fmt.Println("\nTop 10 failure-prone nodes fleet-wide")
	topTable := report.NewTable("System", "Node", "Failures", "Workload note")
	for i := 0; i < 10 && i < len(worst); i++ {
		w := worst[i]
		note := ""
		if rec := dataset.ByNode(w.system, w.node); rec.Len() > 0 {
			switch rec.At(0).Workload {
			case failures.WorkloadGraphics:
				note = "graphics/visualization node"
			case failures.WorkloadFrontend:
				note = "front-end node"
			}
		}
		topTable.AddRow(fmt.Sprintf("%d", w.system), fmt.Sprintf("%d", w.node),
			fmt.Sprintf("%d", w.count), note)
	}
	fmt.Print(topTable.String())

	// Downtime cost attribution: where do the lost node-hours go?
	downtime, err := analysis.DowntimeBreakdown(dataset, nil)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(report.Figure1("Downtime attribution (fleet-wide)", downtime))

	// Repair-time tail risk: what does the 95th percentile repair look
	// like compared with the median?
	minutes := dataset.RepairTimes()
	med, err := stats.Quantile(minutes, 0.5)
	if err != nil {
		return err
	}
	p95, err := stats.Quantile(minutes, 0.95)
	if err != nil {
		return err
	}
	p99, err := stats.Quantile(minutes, 0.99)
	if err != nil {
		return err
	}
	fmt.Printf("\nrepair tail risk: median %.0f min, p95 %.0f min, p99 %.0f min\n", med, p95, p99)
	fmt.Println("the heavy lognormal tail (Figure 7a) means capacity planning must budget")
	fmt.Println("for repairs an order of magnitude beyond the median.")

	// How sure are we about the headline shape? The analysis engine fits
	// the worst system's TBF with bootstrap confidence intervals.
	eng := engine.New(engine.Options{BootstrapReps: 100, Seed: 1})
	fleet, err := eng.AnalyzeFleet(context.Background(), dataset.BySystem(20), engine.ShardSpec{
		CIFamilies: []dist.Family{dist.FamilyWeibull, dist.FamilyLogNormal},
	})
	if err != nil {
		return err
	}
	fmt.Println("\nSystem 20 fit uncertainty (engine, B=100 bootstrap)")
	fmt.Print(report.FleetTable(fleet, eng.Level()))
	return nil
}
