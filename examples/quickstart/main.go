// Quickstart: generate a synthetic LANL-like failure trace, save and reload
// it as CSV, compute the paper's headline statistics, and fit the four
// standard reliability distributions to time-between-failures.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"hpcfail/internal/analysis"
	"hpcfail/internal/dist"
	"hpcfail/internal/failures"
	"hpcfail/internal/lanl"
	"hpcfail/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Generate the failure trace for two systems (IDs from Table 1).
	gen := lanl.NewGenerator(lanl.Config{Seed: 1, Systems: []int{18, 20}})
	dataset, err := gen.Generate()
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	fmt.Printf("generated %d failure records for systems %v\n\n",
		dataset.Len(), dataset.Systems())

	// 2. Round-trip through the CSV format (what cmd/lanlgen writes).
	var buf bytes.Buffer
	if err := failures.WriteCSV(&buf, dataset); err != nil {
		return fmt.Errorf("write csv: %w", err)
	}
	dataset, err = failures.ReadCSV(&buf)
	if err != nil {
		return fmt.Errorf("read csv: %w", err)
	}

	// 3. Root-cause breakdown (the paper's Figure 1a).
	breakdown, err := analysis.RootCauseBreakdown(dataset, dataset.HWTypes())
	if err != nil {
		return fmt.Errorf("root causes: %w", err)
	}
	fmt.Print(report.Figure1("Failures by root cause", breakdown))
	fmt.Println()

	// 4. Fit the four standard distributions to system 20's time between
	// failures (the paper's Figure 6d) and inspect the winner.
	tbf := dataset.BySystem(20).PositiveInterarrivals()
	cmp, err := dist.FitAll(tbf)
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	fmt.Println("Time between failures, system 20 (seconds):")
	fmt.Print(report.FitComparison(cmp))
	best, err := cmp.Best()
	if err != nil {
		return err
	}
	fmt.Printf("\nbest fit: %s (%s)\n", best.Family, best.Dist.Params())
	if wb, ok := cmp.ByFamily(dist.FamilyWeibull); ok && wb.Err == nil {
		weibull, ok := wb.Dist.(dist.Weibull)
		if ok && weibull.HazardDecreasing() {
			fmt.Println("the Weibull shape is below 1: a long quiet period means the next" +
				" failure is LESS likely — the opposite of the memoryless assumption")
		}
	}
	return nil
}
